// Binary codec for Profile: the payload format of the derived-state
// sidecar (internal/store's profiles.snap). The store frames and
// checksums these blobs with the same CRC32-Castagnoli framing as the
// WAL; this codec only defines the payload, so core stays free of any
// persistence concern and the store stays free of scoring internals.
//
// The encoding is strictly versioned and the decoder is defensive: any
// truncated, corrupted, or oversized payload yields an error, never a
// panic and never an unbounded allocation — warm loads run against
// whatever bytes survived a crash.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/stslib/sts/internal/stprob"
)

// profileCodecVersion is the sidecar payload version. Bump on any layout
// change; the decoder rejects versions it does not understand, which a
// warm load treats as a skippable (cold) entry.
const profileCodecVersion = 1

const (
	pcFlagCompact   = 1 << 0
	pcFlagBounds    = 1 << 1
	pcFlagUnbounded = 1 << 2
)

// maxProfileIDBytes bounds the encoded ID length a decoder will accept.
const maxProfileIDBytes = 1 << 12

// EncodeProfile serializes a profile — scoring state and, when present,
// the filter-and-refine bound state — into a self-contained binary blob
// decodable by DecodeProfile. The profile is not mutated.
func EncodeProfile(p *Profile) []byte {
	if p == nil {
		return nil
	}
	// Rough capacity: cells dominate; one uvarint cell + one probability
	// per stored pair, plus headroom for metadata.
	est := 64 + len(p.ID) + 5*len(p.cells) + 8*len(p.probs) + 4*len(p.probs32) + 16*len(p.buckets)
	buf := make([]byte, 0, est)
	buf = append(buf, profileCodecVersion)
	var flags byte
	if p.compact {
		flags |= pcFlagCompact
	}
	if p.HasBounds() {
		flags |= pcFlagBounds
	}
	if p.unbounded {
		flags |= pcFlagUnbounded
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(p.ID)))
	buf = append(buf, p.ID...)
	buf = pcAppendF64(buf, p.BucketSeconds)
	buf = binary.AppendUvarint(buf, uint64(p.n))
	buf = binary.AppendUvarint(buf, uint64(len(p.buckets)))
	for _, b := range p.buckets {
		buf = binary.AppendVarint(buf, b)
	}
	for _, w := range p.weights {
		buf = binary.AppendUvarint(buf, uint64(w))
	}
	// Per-entry view lengths, then the shared backing arrays: the decoder
	// re-slices the views exactly as finishProfileViews does.
	if p.compact {
		for _, d := range p.dists32 {
			buf = binary.AppendUvarint(buf, uint64(len(d.Cells)))
		}
	} else {
		for _, d := range p.dists {
			buf = binary.AppendUvarint(buf, uint64(len(d.Cells)))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.cells)))
	for _, c := range p.cells {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	if p.compact {
		for _, v := range p.probs32 {
			buf = pcAppendF32(buf, v)
		}
	} else {
		for _, v := range p.probs {
			buf = pcAppendF64(buf, v)
		}
	}
	if !p.HasBounds() {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(p.nx))
	buf = binary.AppendVarint(buf, p.b0)
	buf = binary.AppendVarint(buf, p.b1)
	buf = binary.AppendUvarint(buf, uint64(len(p.env)))
	for _, bx := range p.env {
		buf = pcAppendBox(buf, bx)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.bndBuckets)))
	for i, b := range p.bndBuckets {
		buf = binary.AppendVarint(buf, b)
		buf = binary.AppendUvarint(buf, uint64(p.bndFirst[i]))
		buf = binary.AppendUvarint(buf, uint64(p.bndCount[i]))
		buf = pcAppendBox(buf, p.bndBox[i])
		buf = pcAppendF64(buf, p.bndMass[i])
		d := p.bndDist[i]
		buf = binary.AppendUvarint(buf, uint64(len(d.Cells)))
		for _, c := range d.Cells {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
		for _, v := range d.Probs {
			buf = pcAppendF64(buf, v)
		}
	}
	for i := range p.buckets {
		buf = pcAppendBox(buf, p.entryBox[i])
		buf = pcAppendF64(buf, p.entryMax[i])
		buf = pcAppendF64(buf, p.entrySum[i])
	}
	for _, v := range p.sufW {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	buf = pcAppendF64(buf, p.maxEntryMax)
	buf = pcAppendF64(buf, p.maxEntrySum)
	return buf
}

// DecodeProfile reconstructs a profile encoded by EncodeProfile. Every
// slice is freshly allocated (decoded bound distributions own their
// storage even where the original aliased a Prepared cache — same
// values, owned backing). Malformed input of any kind returns an error.
func DecodeProfile(blob []byte) (*Profile, error) {
	r := pcReader{b: blob}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver != profileCodecVersion {
		return nil, fmt.Errorf("core: profile codec version %d not supported", ver)
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	compact := flags&pcFlagCompact != 0
	hasBounds := flags&pcFlagBounds != 0
	idLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if idLen > maxProfileIDBytes {
		return nil, fmt.Errorf("core: profile ID of %d bytes exceeds limit", idLen)
	}
	idBytes, err := r.bytes(int(idLen))
	if err != nil {
		return nil, err
	}
	p := &Profile{ID: string(idBytes), compact: compact}
	if p.BucketSeconds, err = r.f64(); err != nil {
		return nil, err
	}
	if p.BucketSeconds <= 0 || math.IsNaN(p.BucketSeconds) || math.IsInf(p.BucketSeconds, 0) {
		return nil, errors.New("core: decoded profile bucket width is not positive and finite")
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("core: decoded profile sample count %d out of range", n)
	}
	p.n = int(n)
	ne, err := r.count(1) // entries: ≥1 varint byte each remaining
	if err != nil {
		return nil, err
	}
	if ne > maxProfileBuckets {
		return nil, fmt.Errorf("core: decoded profile has %d buckets (max %d)", ne, maxProfileBuckets)
	}
	if ne > 0 {
		p.buckets = make([]int64, ne)
		p.weights = make([]int32, ne)
	}
	for i := range p.buckets {
		if p.buckets[i], err = r.varint(); err != nil {
			return nil, err
		}
		if i > 0 && p.buckets[i] <= p.buckets[i-1] {
			return nil, errors.New("core: decoded profile buckets are not strictly ascending")
		}
	}
	for i := range p.weights {
		w, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if w > math.MaxInt32 {
			return nil, errors.New("core: decoded profile bucket weight out of range")
		}
		p.weights[i] = int32(w)
	}
	lens := make([]int, ne)
	var totalLens uint64
	for i := range lens {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if l > uint64(r.remaining()) {
			return nil, errProfileTruncated
		}
		lens[i] = int(l)
		totalLens += l
	}
	nc, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if uint64(nc) != totalLens {
		return nil, errors.New("core: decoded profile cell count disagrees with entry lengths")
	}
	if p.cells, err = r.cells(nc); err != nil {
		return nil, err
	}
	if compact {
		if err := r.need(4 * nc); err != nil {
			return nil, err
		}
		if nc > 0 {
			p.probs32 = make([]float32, nc)
		}
		for i := range p.probs32 {
			if p.probs32[i], err = r.f32(); err != nil {
				return nil, err
			}
		}
		if ne > 0 {
			p.dists32 = make([]stprob.Dist32, ne)
		}
		for i, l := range lens {
			p.dists32[i] = stprob.Dist32{Cells: make([]int, l), Probs: make([]float32, l)}
		}
	} else {
		if err := r.need(8 * nc); err != nil {
			return nil, err
		}
		if nc > 0 {
			p.probs = make([]float64, nc)
		}
		for i := range p.probs {
			if p.probs[i], err = r.f64(); err != nil {
				return nil, err
			}
		}
		if ne > 0 {
			p.dists = make([]stprob.Dist, ne)
		}
		for i, l := range lens {
			p.dists[i] = stprob.Dist{Cells: make([]int, l), Probs: make([]float64, l)}
		}
	}
	finishProfileViews(p)
	if !hasBounds {
		if r.remaining() != 0 {
			return nil, errors.New("core: trailing bytes after decoded profile")
		}
		return p, nil
	}
	nx, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nx > math.MaxInt32 {
		return nil, errors.New("core: decoded profile grid width out of range")
	}
	p.nx = int(nx)
	if p.b0, err = r.varint(); err != nil {
		return nil, err
	}
	if p.b1, err = r.varint(); err != nil {
		return nil, err
	}
	p.unbounded = flags&pcFlagUnbounded != 0
	nenv, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if nenv > 0 {
		p.env = make([]cellBox, nenv)
		for i := range p.env {
			if p.env[i], err = r.box(); err != nil {
				return nil, err
			}
		}
	}
	nb, err := r.count(2)
	if err != nil {
		return nil, err
	}
	if nb > 0 {
		p.bndBuckets = make([]int64, nb)
		p.bndFirst = make([]int32, nb)
		p.bndCount = make([]int32, nb)
		p.bndBox = make([]cellBox, nb)
		p.bndMass = make([]float64, nb)
		p.bndDist = make([]stprob.Dist, nb)
	}
	for i := 0; i < nb; i++ {
		if p.bndBuckets[i], err = r.varint(); err != nil {
			return nil, err
		}
		first, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if first > math.MaxInt32 || count > math.MaxInt32 {
			return nil, errors.New("core: decoded bound run out of range")
		}
		p.bndFirst[i], p.bndCount[i] = int32(first), int32(count)
		if p.bndBox[i], err = r.box(); err != nil {
			return nil, err
		}
		if p.bndMass[i], err = r.f64(); err != nil {
			return nil, err
		}
		dl, err := r.count(1)
		if err != nil {
			return nil, err
		}
		d := stprob.Dist{}
		if dl > 0 {
			if d.Cells, err = r.cells(dl); err != nil {
				return nil, err
			}
			if err := r.need(8 * dl); err != nil {
				return nil, err
			}
			d.Probs = make([]float64, dl)
			for k := range d.Probs {
				if d.Probs[k], err = r.f64(); err != nil {
					return nil, err
				}
			}
		}
		p.bndDist[i] = d
	}
	if ne > 0 {
		p.entryBox = make([]cellBox, ne)
		p.entryMax = make([]float64, ne)
		p.entrySum = make([]float64, ne)
	}
	for i := 0; i < ne; i++ {
		if p.entryBox[i], err = r.box(); err != nil {
			return nil, err
		}
		if p.entryMax[i], err = r.f64(); err != nil {
			return nil, err
		}
		if p.entrySum[i], err = r.f64(); err != nil {
			return nil, err
		}
	}
	p.sufW = make([]int64, ne+1)
	for i := range p.sufW {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt64 {
			return nil, errors.New("core: decoded suffix weight out of range")
		}
		p.sufW[i] = int64(v)
	}
	if p.maxEntryMax, err = r.f64(); err != nil {
		return nil, err
	}
	if p.maxEntrySum, err = r.f64(); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, errors.New("core: trailing bytes after decoded profile")
	}
	return p, nil
}

func pcAppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func pcAppendF32(b []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
}

func pcAppendBox(b []byte, bx cellBox) []byte {
	b = binary.AppendVarint(b, int64(bx.c0))
	b = binary.AppendVarint(b, int64(bx.c1))
	b = binary.AppendVarint(b, int64(bx.r0))
	b = binary.AppendVarint(b, int64(bx.r1))
	return b
}

var errProfileTruncated = errors.New("core: truncated profile blob")

// pcReader is a strict cursor over an encoded profile: every read is
// bounds-checked and every count is validated against the bytes left, so
// corrupt input fails fast instead of allocating or panicking.
type pcReader struct {
	b   []byte
	pos int
}

func (r *pcReader) remaining() int { return len(r.b) - r.pos }

func (r *pcReader) need(n int) error {
	if n < 0 || r.remaining() < n {
		return errProfileTruncated
	}
	return nil
}

func (r *pcReader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, errProfileTruncated
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *pcReader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	v := r.b[r.pos : r.pos+n]
	r.pos += n
	return v, nil
}

func (r *pcReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, errProfileTruncated
	}
	r.pos += n
	return v, nil
}

func (r *pcReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, errProfileTruncated
	}
	r.pos += n
	return v, nil
}

// count reads an element count and sanity-checks it against the bytes
// remaining, given a minimum encoded size per element — a corrupt length
// can therefore never trigger an allocation larger than the blob itself.
func (r *pcReader) count(minElemBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/minElemBytes)+1 {
		return 0, errProfileTruncated
	}
	return int(v), nil
}

func (r *pcReader) f64() (float64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *pcReader) f32() (float32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.pos:]))
	r.pos += 4
	return v, nil
}

func (r *pcReader) box() (cellBox, error) {
	var bx cellBox
	for _, f := range []*int32{&bx.c0, &bx.c1, &bx.r0, &bx.r1} {
		v, err := r.varint()
		if err != nil {
			return bx, err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return bx, errors.New("core: decoded cell box coordinate out of range")
		}
		*f = int32(v)
	}
	return bx, nil
}

func (r *pcReader) cells(n int) ([]int, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, errors.New("core: decoded cell index out of range")
		}
		out[i] = int(v)
	}
	return out, nil
}
