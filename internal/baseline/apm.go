package baseline

import (
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// APMCalibrate performs the anchor-point calibration of Su et al. (SIGMOD
// 2013) as configured in Section VI-A of the STS paper: the space is
// divided into grids, the grid centers serve as anchor points, and every
// sample snaps to its nearest anchor. Consecutive duplicate anchors are
// collapsed, and geometry-based completion inserts the intermediate
// anchors along the straight line between two non-adjacent anchors so the
// calibrated trajectory has a unified spatial granularity.
func APMCalibrate(tr model.Trajectory, grid *geo.Grid) model.Trajectory {
	out := model.Trajectory{ID: tr.ID}
	lastCell := -1
	var lastT float64
	for _, s := range tr.Samples {
		cell := grid.Cell(s.Loc)
		if cell == lastCell {
			continue
		}
		if lastCell >= 0 {
			// Geometry-based completion: walk the straight line between
			// the two anchors and insert every crossed cell center.
			from := grid.Center(lastCell)
			to := grid.Center(cell)
			steps := int(from.Dist(to)/grid.CellSize()) + 1
			for k := 1; k < steps; k++ {
				f := float64(k) / float64(steps)
				mid := grid.Cell(from.Lerp(to, f))
				if mid != lastCell && mid != cell {
					t := lastT + (s.T-lastT)*f
					out.Samples = appendAnchor(out.Samples, grid.Center(mid), t)
					lastCell = mid
				}
			}
		}
		out.Samples = appendAnchor(out.Samples, grid.Center(cell), s.T)
		lastCell = cell
		lastT = s.T
	}
	return out
}

// appendAnchor appends an anchor sample, nudging the timestamp forward if
// it would collide with the previous one so calibrated trajectories stay
// strictly time-ordered.
func appendAnchor(samples []model.Sample, loc geo.Point, t float64) []model.Sample {
	if n := len(samples); n > 0 && t <= samples[n-1].T {
		t = samples[n-1].T + 1e-6
	}
	return append(samples, model.Sample{Loc: loc, T: t})
}

// APM returns the APM baseline distance: both trajectories are calibrated
// to the grid's anchor points and compared with DTW, as Section VI-A
// prescribes ("DTW is used as the similarity metric after calibration").
func APM(a, b model.Trajectory, grid *geo.Grid) float64 {
	ca := APMCalibrate(a, grid)
	cb := APMCalibrate(b, grid)
	return DTW(ca, cb)
}
