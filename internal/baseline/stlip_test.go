package baseline

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func TestLIPIdenticalIsZero(t *testing.T) {
	a := pathEast("a", geo.Point{Y: 10}, 1, 10, 0, 8)
	if got := LIP(a, a.Clone(), 32); got != 0 {
		t.Errorf("LIP(a,a)=%v", got)
	}
}

func TestLIPParallelLinesArea(t *testing.T) {
	// Two parallel 70 m lines 5 m apart enclose a 350 m² strip.
	a := pathEast("a", geo.Point{Y: 0}, 1, 10, 0, 8) // length 70
	b := pathEast("b", geo.Point{Y: 5}, 1, 10, 0, 8) // length 70
	got := LIP(a, b, 64)
	if math.Abs(got-350) > 1 {
		t.Errorf("LIP=%v want ~350", got)
	}
}

func TestLIPScalesWithSeparation(t *testing.T) {
	a := pathEast("a", geo.Point{Y: 0}, 1, 10, 0, 8)
	near := pathEast("b", geo.Point{Y: 3}, 1, 10, 0, 8)
	far := pathEast("c", geo.Point{Y: 30}, 1, 10, 0, 8)
	if LIP(a, near, 32) >= LIP(a, far, 32) {
		t.Error("LIP does not grow with separation")
	}
}

func TestLIPEdgeCases(t *testing.T) {
	if got := LIP(model.Trajectory{}, model.Trajectory{}, 32); !math.IsInf(got, 1) {
		t.Errorf("empty LIP=%v", got)
	}
	// Two stationary objects: point gap.
	p1 := model.Trajectory{Samples: []model.Sample{{Loc: geo.Point{X: 0}, T: 0}}}
	p2 := model.Trajectory{Samples: []model.Sample{{Loc: geo.Point{X: 7}, T: 0}}}
	if got := LIP(p1, p2, 32); got != 7 {
		t.Errorf("stationary LIP=%v want 7", got)
	}
}

func TestSTLIPTemporalPenalty(t *testing.T) {
	a := pathEast("a", geo.Point{Y: 0}, 1, 10, 0, 8)
	sameTime := pathEast("b", geo.Point{Y: 5}, 1, 10, 0, 8)
	shifted := sameTime.Clone()
	for i := range shifted.Samples {
		shifted.Samples[i].T += 500
	}
	p := STLIPParams{Samples: 32, TemporalWeight: 1}
	// Same shape, same epoch: no penalty beyond the spatial area.
	if got, want := STLIP(a, sameTime, p), LIP(a, sameTime, 32); math.Abs(got-want) > 1e-9 {
		t.Errorf("aligned STLIP=%v want %v", got, want)
	}
	// Same shape, shifted epoch: penalized.
	if STLIP(a, shifted, p) <= STLIP(a, sameTime, p) {
		t.Error("temporal shift not penalized")
	}
	// Zero weight disables the penalty.
	p0 := STLIPParams{Samples: 32}
	if got, want := STLIP(a, shifted, p0), LIP(a, shifted, 32); got != want {
		t.Errorf("w=0 STLIP=%v want %v", got, want)
	}
}

func TestSTLIPDiscriminates(t *testing.T) {
	p := STLIPParams{Samples: 32, TemporalWeight: 0.5}
	discriminates(t, "STLIP", func(a, b model.Trajectory) float64 { return STLIP(a, b, p) }, false)
}
