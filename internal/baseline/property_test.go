package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// randomTrajectory derives a plausible random trajectory from a seed.
func randomTrajectory(seed int64, id string) model.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(12)
	tr := model.Trajectory{ID: id}
	t := rng.Float64() * 100
	p := geo.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
	for i := 0; i < n; i++ {
		tr.Samples = append(tr.Samples, model.Sample{Loc: p, T: t})
		t += 1 + rng.Float64()*30
		p.X += rng.NormFloat64() * 20
		p.Y += rng.NormFloat64() * 20
	}
	return tr
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60}
}

func TestDTWProperties(t *testing.T) {
	symmetric := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		return math.Abs(DTW(a, b)-DTW(b, a)) < 1e-9
	}
	if err := quick.Check(symmetric, quickCfg()); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(s int64) bool {
		a := randomTrajectory(s, "a")
		return DTW(a, a) == 0
	}
	if err := quick.Check(identity, quickCfg()); err != nil {
		t.Errorf("identity: %v", err)
	}
	nonNegative := func(s1, s2 int64) bool {
		return DTW(randomTrajectory(s1, "a"), randomTrajectory(s2, "b")) >= 0
	}
	if err := quick.Check(nonNegative, quickCfg()); err != nil {
		t.Errorf("non-negativity: %v", err)
	}
}

func TestEDRSymmetricAndBounded(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		d1, d2 := EDR(a, b, 25), EDR(b, a, 25)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLCSSBounded(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		d := LCSS(a, b, 25, 30)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestERPTriangleInequality(t *testing.T) {
	g := geo.Point{X: 250, Y: 250}
	f := func(s1, s2, s3 int64) bool {
		a := randomTrajectory(s1, "a")
		b := randomTrajectory(s2, "b")
		c := randomTrajectory(s3, "c")
		return ERP(a, c, g) <= ERP(a, b, g)+ERP(b, c, g)+1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDiscreteFrechetProperties(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		d := DiscreteFrechet(a, b)
		// Symmetric, non-negative, and at least the endpoint distances.
		if math.Abs(d-DiscreteFrechet(b, a)) > 1e-9 || d < 0 {
			return false
		}
		start := a.Samples[0].Loc.Dist(b.Samples[0].Loc)
		end := a.Samples[a.Len()-1].Loc.Dist(b.Samples[b.Len()-1].Loc)
		return d >= start-1e-9 && d >= end-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestFrechetDominatesDTWAverage(t *testing.T) {
	// DTW total cost / coupling length can never exceed the Fréchet
	// (minimax) distance times the coupling length; weaker but checkable:
	// Fréchet ≥ max over the optimal DTW coupling's per-step costs is not
	// directly available, so check Fréchet ≥ DTW / (len(a)+len(b)), a
	// loose but always-valid bound.
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		return DiscreteFrechet(a, b) >= DTW(a, b)/float64(a.Len()+b.Len())-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestCATSSymmetricAndBounded(t *testing.T) {
	p := CATSParams{Eps: 40, Tau: 60}
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		v1, v2 := CATS(a, b, p), CATS(b, a, p)
		return math.Abs(v1-v2) < 1e-9 && v1 >= 0 && v1 <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestSSTSymmetricAndBounded(t *testing.T) {
	p := DefaultSSTParams(30, 60)
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		v1, v2 := SST(a, b, p), SST(b, a, p)
		return math.Abs(v1-v2) < 1e-9 && v1 >= 0 && v1 <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestWGMSymmetricAndBounded(t *testing.T) {
	p := DefaultWGMParams(100, 100)
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		v1, v2 := WGM(a, b, p), WGM(b, a, p)
		return math.Abs(v1-v2) < 1e-9 && v1 >= 0 && v1 <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEDwPSymmetricNonNegative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		v1, v2 := EDwP(a, b), EDwP(b, a)
		return math.Abs(v1-v2) < 1e-6 && v1 >= 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestKFFiniteOnRandomInputs(t *testing.T) {
	p := DefaultKalmanParams(10)
	f := func(s1, s2 int64) bool {
		a, b := randomTrajectory(s1, "a"), randomTrajectory(s2, "b")
		v := KF(a, b, p)
		return !math.IsNaN(v) && v >= 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestAPMPreservesValidity(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -200, Y: -200}, geo.Point{X: 800, Y: 800}), 50)
	if err != nil {
		t.Fatal(err)
	}
	f := func(s int64) bool {
		tr := randomTrajectory(s, "a")
		cal := APMCalibrate(tr, g)
		return cal.Validate() == nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
