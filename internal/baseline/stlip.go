package baseline

import (
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// STLIPParams configures the STLIP measure.
type STLIPParams struct {
	// Samples is the number of arc-length sample points used to
	// approximate the in-between area (default 32).
	Samples int
	// TemporalWeight scales the temporal penalty term delta ≥ 0; 0
	// reduces STLIP to the purely spatial LIP.
	TemporalWeight float64
}

// LIP approximates the "Locality In-between Polylines" distance of
// Pelekis et al. (TIME 2007): the area enclosed between the two
// trajectories' polylines. The exact formulation decomposes the region
// into polygons at the polylines' intersection points; this
// implementation approximates the same area by integrating the gap
// between the curves under a normalized arc-length parameterization:
//
//	LIP ≈ ∫₀¹ ‖A(s) − B(s)‖ · (|A| + |B|)/2 ds,
//
// which agrees with the polygon areas when the curves do not cross and
// degrades gracefully when they do. Only the spatial shapes enter.
func LIP(a, b model.Trajectory, samples int) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return math.Inf(1)
	}
	if samples < 2 {
		samples = 32
	}
	la, lb := a.PathLength(), b.PathLength()
	scale := (la + lb) / 2
	if scale == 0 {
		// Two stationary objects: the area degenerates to the point gap.
		return a.Samples[0].Loc.Dist(b.Samples[0].Loc)
	}
	var integral float64
	for i := 0; i < samples; i++ {
		s := (float64(i) + 0.5) / float64(samples)
		pa := pointAtArcLength(a, s*la)
		pb := pointAtArcLength(b, s*lb)
		integral += pa.Dist(pb)
	}
	return integral / float64(samples) * scale
}

// STLIP is the spatial-temporal extension of LIP: the spatial area is
// inflated by a temporal dissimilarity factor,
//
//	STLIP = LIP · (1 + w·Δ),
//
// where Δ is the normalized disagreement of the two trajectories' time
// spans (offset and duration), the "temporal distance" STLIP's authors
// attach multiplicatively.
func STLIP(a, b model.Trajectory, p STLIPParams) float64 {
	lip := LIP(a, b, p.Samples)
	if math.IsInf(lip, 1) || p.TemporalWeight <= 0 {
		return lip
	}
	da := a.Duration()
	db := b.Duration()
	span := math.Max(a.End(), b.End()) - math.Min(a.Start(), b.Start())
	if span <= 0 {
		return lip
	}
	offset := math.Abs(a.Start() - b.Start())
	durGap := math.Abs(da - db)
	delta := (offset + durGap) / span
	return lip * (1 + p.TemporalWeight*delta)
}

// pointAtArcLength returns the point at the given distance along the
// trajectory's polyline, clamped to its endpoints.
func pointAtArcLength(tr model.Trajectory, d float64) geo.Point {
	if d <= 0 {
		return tr.Samples[0].Loc
	}
	var acc float64
	for i := 1; i < tr.Len(); i++ {
		seg := tr.Samples[i].Loc.Dist(tr.Samples[i-1].Loc)
		if acc+seg >= d && seg > 0 {
			f := (d - acc) / seg
			return tr.Samples[i-1].Loc.Lerp(tr.Samples[i].Loc, f)
		}
		acc += seg
	}
	return tr.Samples[tr.Len()-1].Loc
}
