package baseline

import (
	"math"

	"github.com/stslib/sts/internal/model"
)

// WGMParams configures the WGM measure.
type WGMParams struct {
	// SpatialScale converts distances to similarities: a point pair d
	// meters apart has spatial similarity exp(−d/SpatialScale).
	SpatialScale float64
	// TemporalScale does the same for timestamp differences in seconds.
	TemporalScale float64
	// SpatialWeight w ∈ [0,1] is the exponent of the spatial similarity in
	// the weighted geometric mean; the temporal similarity gets 1−w.
	SpatialWeight float64
	// Pairs is the number of aligned point pairs sampled by index
	// fraction (origin vs origin, destination vs destination, and evenly
	// in between). Zero selects 10.
	Pairs int
}

// DefaultWGMParams scales WGM to a scene.
func DefaultWGMParams(spatialScale, temporalScale float64) WGMParams {
	return WGMParams{
		SpatialScale:  spatialScale,
		TemporalScale: temporalScale,
		SpatialWeight: 0.5,
		Pairs:         10,
	}
}

// WGM returns the similarity of Ketabi, Alipour and Helmy (SIGSPATIAL
// 2018) in [0, 1]: the arithmetic mean of point-wise similarities (origin
// vs. origin, destination vs. destination, and proportionally aligned
// interior points), each the weighted geometric mean of a Euclidean
// spatial similarity and a temporal similarity. The original formulation
// assumes trajectories of equal length; index-fraction alignment extends
// it to unequal lengths, degrading exactly as the paper observes when
// sampling is sporadic.
func WGM(a, b model.Trajectory, p WGMParams) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	pairs := p.Pairs
	if pairs <= 0 {
		pairs = 10
	}
	if a.Len() == 1 || b.Len() == 1 {
		pairs = 1
	}
	w := math.Min(1, math.Max(0, p.SpatialWeight))
	var total float64
	for k := 0; k < pairs; k++ {
		var f float64
		if pairs > 1 {
			f = float64(k) / float64(pairs-1)
		}
		sa := sampleAtFraction(a, f)
		sb := sampleAtFraction(b, f)
		spatial := math.Exp(-sa.Loc.Dist(sb.Loc) / p.SpatialScale)
		temporal := math.Exp(-math.Abs(sa.T-sb.T) / p.TemporalScale)
		total += math.Pow(spatial, w) * math.Pow(temporal, 1-w)
	}
	return total / float64(pairs)
}

// WGMDistance adapts WGM to the distance convention: 1 − WGM.
func WGMDistance(a, b model.Trajectory, p WGMParams) float64 {
	return 1 - WGM(a, b, p)
}

// sampleAtFraction returns the sample at index fraction f ∈ [0,1] of the
// trajectory (nearest index).
func sampleAtFraction(tr model.Trajectory, f float64) model.Sample {
	i := int(f*float64(tr.Len()-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= tr.Len() {
		i = tr.Len() - 1
	}
	return tr.Samples[i]
}
