package baseline

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// pathEast builds a trajectory moving east at speed from origin, n
// samples step seconds apart, starting at time t0.
func pathEast(id string, origin geo.Point, speed, step, t0 float64, n int) model.Trajectory {
	tr := model.Trajectory{ID: id}
	for i := 0; i < n; i++ {
		tt := t0 + float64(i)*step
		tr.Samples = append(tr.Samples, model.Sample{
			Loc: geo.Point{X: origin.X + speed*(tt-t0), Y: origin.Y},
			T:   tt,
		})
	}
	return tr
}

// discriminates asserts that a measure scores a co-located pair strictly
// better than a separated pair. For similarities better means higher, for
// distances lower.
func discriminates(t *testing.T, name string, score func(a, b model.Trajectory) float64, higherIsBetter bool) {
	t.Helper()
	a := pathEast("a", geo.Point{Y: 50}, 1.2, 10, 0, 12)
	near := pathEast("b", geo.Point{X: 1, Y: 51}, 1.2, 13, 2, 9) // same route, async sampling
	far := pathEast("c", geo.Point{Y: 400}, 1.2, 13, 2, 9)       // 350 m north
	sNear := score(a, near)
	sFar := score(a, far)
	ok := sNear > sFar
	if !higherIsBetter {
		ok = sNear < sFar
	}
	if !ok {
		t.Errorf("%s does not discriminate: near=%v far=%v", name, sNear, sFar)
	}
}

func TestCATSDiscriminates(t *testing.T) {
	p := CATSParams{Eps: 12, Tau: 40}
	discriminates(t, "CATS", func(a, b model.Trajectory) float64 { return CATS(a, b, p) }, true)
}

func TestCATSRange(t *testing.T) {
	p := CATSParams{Eps: 12, Tau: 40}
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 10)
	if got := CATS(a, a, p); got <= 0 || got > 1 {
		t.Errorf("CATS(a,a)=%v", got)
	}
	if got := CATS(a, model.Trajectory{}, p); got != 0 {
		t.Errorf("CATS vs empty=%v", got)
	}
	if got := CATSDistance(a, a, p); got < 0 || got >= 1 {
		t.Errorf("CATSDistance(a,a)=%v", got)
	}
}

func TestCATSIdenticalIsPerfect(t *testing.T) {
	p := CATSParams{Eps: 12, Tau: 40}
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 10)
	if got := CATS(a, a.Clone(), p); math.Abs(got-1) > 1e-12 {
		t.Errorf("CATS of identical copies=%v want 1", got)
	}
}

func TestCATSTemporalWindow(t *testing.T) {
	p := CATSParams{Eps: 12, Tau: 5}
	a := pathEast("a", geo.Point{Y: 50}, 0, 10, 0, 5)    // stationary at origin
	b := pathEast("b", geo.Point{Y: 50}, 0, 10, 1000, 5) // same place, much later
	if got := CATS(a, b, p); got != 0 {
		t.Errorf("CATS outside window=%v want 0", got)
	}
}

func TestEDwPIdentityAndDiscrimination(t *testing.T) {
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 8)
	if got := EDwP(a, a.Clone()); got != 0 {
		t.Errorf("EDwP(a,a)=%v", got)
	}
	discriminates(t, "EDwP", EDwP, false)
}

func TestEDwPRobustToResampling(t *testing.T) {
	// The same straight path sampled at 10 s vs 5 s: EDwP's projections
	// should keep the distance near zero, far below a parallel path 30 m
	// away.
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 8)
	dense := pathEast("b", geo.Point{Y: 50}, 1, 5, 0, 15)
	off := pathEast("c", geo.Point{Y: 80}, 1, 10, 0, 8)
	dSame := EDwP(a, dense)
	dOff := EDwP(a, off)
	if dSame >= dOff {
		t.Errorf("resampled same path %v >= offset path %v", dSame, dOff)
	}
}

func TestEDwPEdgeCases(t *testing.T) {
	if got := EDwP(model.Trajectory{}, model.Trajectory{}); got != 0 {
		t.Errorf("empty-empty=%v", got)
	}
	a := pathEast("a", geo.Point{}, 1, 10, 0, 3)
	if got := EDwP(a, model.Trajectory{}); !math.IsInf(got, 1) {
		t.Errorf("vs empty=%v", got)
	}
	p1 := model.Trajectory{Samples: []model.Sample{{Loc: geo.Point{X: 1}, T: 0}}}
	p2 := model.Trajectory{Samples: []model.Sample{{Loc: geo.Point{X: 4}, T: 0}}}
	if got := EDwP(p1, p2); got != 3 {
		t.Errorf("single-single=%v want 3", got)
	}
}

func TestAPMCalibrate(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Path crossing three cells horizontally.
	tr := pathEast("a", geo.Point{X: 5, Y: 5}, 1, 10, 0, 3) // x: 5,15,25
	cal := APMCalibrate(tr, g)
	if err := cal.Validate(); err != nil {
		t.Fatalf("calibrated trajectory invalid: %v", err)
	}
	// Every calibrated location is a cell center.
	for _, s := range cal.Samples {
		c := g.Cell(s.Loc)
		if g.Center(c) != s.Loc {
			t.Errorf("location %v is not an anchor", s.Loc)
		}
	}
	// Consecutive anchors are distinct.
	for i := 1; i < cal.Len(); i++ {
		if cal.Samples[i].Loc == cal.Samples[i-1].Loc {
			t.Error("duplicate consecutive anchor")
		}
	}
}

func TestAPMCompletionFillsGaps(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Jump across 5 cells in one step: completion must insert the
	// intermediate anchors.
	tr := model.Trajectory{ID: "j", Samples: []model.Sample{
		{Loc: geo.Point{X: 5, Y: 5}, T: 0},
		{Loc: geo.Point{X: 55, Y: 5}, T: 10},
	}}
	cal := APMCalibrate(tr, g)
	if cal.Len() < 4 {
		t.Errorf("completion inserted too few anchors: %d", cal.Len())
	}
}

func TestAPMDiscriminates(t *testing.T) {
	g, err := geo.NewGrid(geo.NewRect(geo.Point{X: -50, Y: -50}, geo.Point{X: 600, Y: 600}), 25)
	if err != nil {
		t.Fatal(err)
	}
	discriminates(t, "APM", func(a, b model.Trajectory) float64 { return APM(a, b, g) }, false)
}

func TestKalmanEstimateSmoothsNoise(t *testing.T) {
	// Noisy observations of a straight walk: the filtered positions
	// should be closer to the truth than the raw ones on average.
	truth := pathEast("t", geo.Point{Y: 50}, 1, 5, 0, 40)
	noisy := truth.Clone()
	// Deterministic zig-zag "noise" of amplitude 6 m.
	for i := range noisy.Samples {
		if i%2 == 0 {
			noisy.Samples[i].Loc.Y += 6
		} else {
			noisy.Samples[i].Loc.Y -= 6
		}
	}
	filtered := KalmanEstimate(noisy, KalmanParams{ProcessNoise: 0.05, MeasurementNoise: 6})
	var rawErr, filtErr float64
	for i := range truth.Samples {
		rawErr += noisy.Samples[i].Loc.Dist(truth.Samples[i].Loc)
		filtErr += filtered.Samples[i].Loc.Dist(truth.Samples[i].Loc)
	}
	if filtErr >= rawErr {
		t.Errorf("filtering did not help: raw=%v filtered=%v", rawErr, filtErr)
	}
}

func TestKalmanPredictAt(t *testing.T) {
	tr := pathEast("t", geo.Point{Y: 50}, 2, 5, 0, 10) // x = 2t
	p := DefaultKalmanParams(1)
	// Prediction beyond the last sample extrapolates the velocity.
	got, ok := KalmanPredictAt(tr, p, 50)
	if !ok {
		t.Fatal("prediction failed")
	}
	if math.Abs(got.X-100) > 10 || math.Abs(got.Y-50) > 5 {
		t.Errorf("predicted %v, want near (100,50)", got)
	}
	if _, ok := KalmanPredictAt(model.Trajectory{}, p, 0); ok {
		t.Error("empty trajectory produced a prediction")
	}
	if _, ok := KalmanPredictAt(tr, p, -10); ok {
		t.Error("time before first observation produced a prediction")
	}
}

func TestKFDiscriminates(t *testing.T) {
	p := DefaultKalmanParams(3)
	discriminates(t, "KF", func(a, b model.Trajectory) float64 { return KF(a, b, p) }, false)
}

func TestKFEmpty(t *testing.T) {
	p := DefaultKalmanParams(3)
	a := pathEast("a", geo.Point{}, 1, 10, 0, 3)
	if got := KF(a, model.Trajectory{}, p); !math.IsInf(got, 1) {
		t.Errorf("KF vs empty=%v", got)
	}
}

func TestWGM(t *testing.T) {
	p := DefaultWGMParams(100, 100)
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 10)
	if got := WGM(a, a.Clone(), p); math.Abs(got-1) > 1e-9 {
		t.Errorf("WGM(a,a)=%v want 1", got)
	}
	if got := WGM(a, model.Trajectory{}, p); got != 0 {
		t.Errorf("WGM vs empty=%v", got)
	}
	discriminates(t, "WGM", func(a, b model.Trajectory) float64 { return WGM(a, b, p) }, true)
	if got := WGMDistance(a, a.Clone(), p); math.Abs(got) > 1e-9 {
		t.Errorf("WGMDistance(a,a)=%v", got)
	}
}

func TestWGMWeightExtremes(t *testing.T) {
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 6)
	// Same spatial path, shifted in time.
	b := pathEast("b", geo.Point{Y: 50}, 1, 10, 500, 6)
	spatialOnly := WGMParams{SpatialScale: 10, TemporalScale: 10, SpatialWeight: 1, Pairs: 6}
	temporalOnly := WGMParams{SpatialScale: 10, TemporalScale: 10, SpatialWeight: 0, Pairs: 6}
	// With weight 1 the time shift is invisible...
	if got := WGM(a, b, spatialOnly); got < 0.4 {
		t.Errorf("spatial-only WGM=%v", got)
	}
	// ...with weight 0 it dominates.
	if got := WGM(a, b, temporalOnly); got > 1e-9 {
		t.Errorf("temporal-only WGM=%v", got)
	}
}

func TestSST(t *testing.T) {
	p := DefaultSSTParams(10, 60)
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 10)
	if got := SST(a, a.Clone(), p); math.Abs(got-1) > 1e-9 {
		t.Errorf("SST(a,a)=%v want 1", got)
	}
	if got := SST(a, model.Trajectory{}, p); got != 0 {
		t.Errorf("SST vs empty=%v", got)
	}
	discriminates(t, "SST", func(a, b model.Trajectory) float64 { return SST(a, b, p) }, true)
	if got := SSTDistance(a, a.Clone(), p); math.Abs(got) > 1e-9 {
		t.Errorf("SSTDistance(a,a)=%v", got)
	}
}

func TestSSTHandlesAsynchronousSampling(t *testing.T) {
	p := DefaultSSTParams(10, 60)
	// Same walk, sampled at offset times: synchronized matching should
	// stay near perfect because interpolation lands on the path.
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 10)
	b := pathEast("b", geo.Point{X: 5, Y: 50}, 1, 10, 5, 9)
	if got := SST(a, b, p); got < 0.8 {
		t.Errorf("async same-path SST=%v", got)
	}
}

func TestSSTSinglePointTrajectory(t *testing.T) {
	p := DefaultSSTParams(10, 60)
	a := pathEast("a", geo.Point{Y: 50}, 1, 10, 0, 10)
	single := model.Trajectory{ID: "s", Samples: []model.Sample{{Loc: geo.Point{X: 30, Y: 50}, T: 30}}}
	got := SST(a, single, p)
	if got <= 0 || got > 1 {
		t.Errorf("SST vs single=%v", got)
	}
}

func TestSuggestedCATSParams(t *testing.T) {
	p := SuggestedCATSParams(3, 20)
	if p.Eps != 12 || p.Tau != 80 {
		t.Errorf("SuggestedCATSParams=%+v", p)
	}
}
