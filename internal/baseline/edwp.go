package baseline

import (
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// EDwP returns the Edit Distance with Projections of Ranu et al. (ICDE
// 2015), a distance designed for trajectories with inconsistent and
// variable sampling rates. EDwP aligns the *segments* of the two
// trajectories; when one trajectory lacks a sample where the other has
// one, the missing point is recovered by projecting onto the segment
// (linear interpolation), which is EDwP's answer to sporadic sampling.
//
// The recursion, following the paper:
//
//	EDwP(T1, T2) = min(
//	    EDwP(rest(T1), rest(T2)) + replacement(T1, T2)·coverage(e1, e2),
//	    EDwP(insert(T1, p), T2) ... )
//
// implemented as a quadratic dynamic program over sample indices where a
// step may consume a point of T1, of T2, or of both; consuming a point of
// one trajectory projects it onto the other's current segment. Costs are
// the paper's replacement (endpoint-distance sum) weighted by coverage
// (the length of trajectory the edit spans).
//
// Only spatial geometry enters the distance; like the reference
// implementation, timestamps only define the sample order.
func EDwP(a, b model.Trajectory) float64 {
	n, m := a.Len(), b.Len()
	switch {
	case n == 0 && m == 0:
		return 0
	case n == 0 || m == 0:
		return math.Inf(1)
	case n == 1 && m == 1:
		return a.Samples[0].Loc.Dist(b.Samples[0].Loc)
	}
	// dp[i][j]: cost of aligning a[0..i] with b[0..j] (points consumed up
	// to and including index i resp. j).
	dp := make([][]float64, n)
	for i := range dp {
		dp[i] = make([]float64, m)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	dp[0][0] = a.Samples[0].Loc.Dist(b.Samples[0].Loc)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cost := dp[i][j]
			if math.IsInf(cost, 1) {
				continue
			}
			// Match the next segment of a with the next segment of b.
			if i+1 < n && j+1 < m {
				p1, p2 := a.Samples[i].Loc, a.Samples[i+1].Loc
				q1, q2 := b.Samples[j].Loc, b.Samples[j+1].Loc
				c := replacement(p1, p2, q1, q2) * coverage(p1, p2, q1, q2)
				if v := cost + c; v < dp[i+1][j+1] {
					dp[i+1][j+1] = v
				}
			}
			// Insert: consume the next point of a, matching it against
			// its projection on b's current position (gap in b).
			if i+1 < n {
				p1, p2 := a.Samples[i].Loc, a.Samples[i+1].Loc
				q := b.Samples[j].Loc
				c := insertCost(p1, p2, q)
				if v := cost + c; v < dp[i+1][j] {
					dp[i+1][j] = v
				}
			}
			if j+1 < m {
				q1, q2 := b.Samples[j].Loc, b.Samples[j+1].Loc
				p := a.Samples[i].Loc
				c := insertCost(q1, q2, p)
				if v := cost + c; v < dp[i][j+1] {
					dp[i][j+1] = v
				}
			}
		}
	}
	return dp[n-1][m-1]
}

// replacement is EDwP's edit cost for matching segment (p1,p2) with
// segment (q1,q2): the sum of the distances between the aligned endpoints.
func replacement(p1, p2, q1, q2 geo.Point) float64 {
	return p1.Dist(q1) + p2.Dist(q2)
}

// coverage weights an edit by how much trajectory it covers: the total
// length of the two segments involved, normalized to keep costs in
// distance units. A longer matched stretch carries proportionally more
// weight, which is what makes EDwP robust to sampling-rate differences.
func coverage(p1, p2, q1, q2 geo.Point) float64 {
	l := p1.Dist(p2) + q1.Dist(q2)
	if l == 0 {
		return 1
	}
	// Normalize by a soft scale so coverage acts as a multiplier around 1
	// rather than squaring the units.
	return 1 + l/(l+replacementScale)
}

// replacementScale soft-normalizes coverage; its exact value only rescales
// distances monotonically and does not affect rankings.
const replacementScale = 100.0

// insertCost is the cost of consuming one extra point on segment (a1,a2)
// while the other trajectory stays at q: the distance from the projection
// of q onto the segment, plus the distance between the inserted endpoint
// and q, weighted by the skipped length.
func insertCost(a1, a2, q geo.Point) float64 {
	dProj, _ := geo.PointSegmentDist(q, a1, a2)
	return dProj + a2.Dist(q)
}
