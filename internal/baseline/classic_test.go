package baseline

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// seq builds a trajectory from (x, y, t) triples.
func seq(triples ...[3]float64) model.Trajectory {
	tr := model.Trajectory{ID: "s"}
	for _, v := range triples {
		tr.Samples = append(tr.Samples, model.Sample{Loc: geo.Point{X: v[0], Y: v[1]}, T: v[2]})
	}
	return tr
}

func TestDTWIdentity(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	if got := DTW(a, a); got != 0 {
		t.Errorf("DTW(a,a)=%v", got)
	}
}

func TestDTWKnownValue(t *testing.T) {
	// Two parallel lines 1 m apart, same length: every match costs 1.
	a := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	b := seq([3]float64{0, 1, 0}, [3]float64{1, 1, 1}, [3]float64{2, 1, 2})
	if got := DTW(a, b); math.Abs(got-3) > 1e-12 {
		t.Errorf("DTW=%v want 3", got)
	}
}

func TestDTWHandlesDifferentLengths(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{2, 0, 2})
	b := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	got := DTW(a, b)
	// Optimal warp: (0,0)->(0,0), then a[0] or a[1] matches b[1] at cost
	// 1, then (2,0)->(2,0): total 1.
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("DTW=%v want 1", got)
	}
}

func TestDTWEmpty(t *testing.T) {
	a := seq([3]float64{0, 0, 0})
	if got := DTW(a, model.Trajectory{}); !math.IsInf(got, 1) {
		t.Errorf("DTW vs empty = %v", got)
	}
}

func TestLCSS(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	// Identical: distance 0.
	if got := LCSS(a, a, 0.5, 0.5); got != 0 {
		t.Errorf("LCSS(a,a)=%v", got)
	}
	// Far away: no matches, distance 1.
	b := seq([3]float64{100, 0, 0}, [3]float64{101, 0, 1})
	if got := LCSS(a, b, 0.5, 0.5); got != 1 {
		t.Errorf("LCSS far=%v", got)
	}
	// Temporal window excludes matches even when space agrees.
	c := seq([3]float64{0, 0, 100}, [3]float64{1, 0, 101})
	if got := LCSS(a, c, 0.5, 0.5); got != 1 {
		t.Errorf("LCSS time-shifted=%v", got)
	}
	if got := LCSS(a, model.Trajectory{}, 0.5, 0.5); got != 1 {
		t.Errorf("LCSS vs empty=%v", got)
	}
}

func TestEDR(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1})
	if got := EDR(a, a, 0.5); got != 0 {
		t.Errorf("EDR(a,a)=%v", got)
	}
	b := seq([3]float64{50, 50, 0}, [3]float64{51, 50, 1})
	if got := EDR(a, b, 0.5); got != 1 {
		t.Errorf("EDR far=%v", got)
	}
	// One extra point costs one edit over max length 3.
	c := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	if got := EDR(a, c, 0.5); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("EDR one-insert=%v", got)
	}
	if got := EDR(model.Trajectory{}, model.Trajectory{}, 0.5); got != 0 {
		t.Errorf("EDR empty-empty=%v", got)
	}
	if got := EDR(a, model.Trajectory{}, 0.5); got != 1 {
		t.Errorf("EDR vs empty=%v", got)
	}
}

func TestERP(t *testing.T) {
	g := geo.Point{}
	a := seq([3]float64{1, 0, 0}, [3]float64{2, 0, 1})
	if got := ERP(a, a, g); got != 0 {
		t.Errorf("ERP(a,a)=%v", got)
	}
	// ERP against empty charges each point's distance to the gap point.
	if got := ERP(a, model.Trajectory{}, g); math.Abs(got-3) > 1e-12 {
		t.Errorf("ERP vs empty=%v want 3", got)
	}
	// Metric property spot check: triangle inequality on three fixed
	// trajectories.
	b := seq([3]float64{1, 1, 0}, [3]float64{2, 1, 1})
	c := seq([3]float64{1, 2, 0}, [3]float64{2, 2, 1})
	ab, bc, ac := ERP(a, b, g), ERP(b, c, g), ERP(a, c, g)
	if ac > ab+bc+1e-9 {
		t.Errorf("ERP triangle violated: %v > %v + %v", ac, ab, bc)
	}
}

func TestDiscreteFrechet(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	if got := DiscreteFrechet(a, a); got != 0 {
		t.Errorf("Frechet(a,a)=%v", got)
	}
	b := seq([3]float64{0, 3, 0}, [3]float64{1, 3, 1}, [3]float64{2, 3, 2})
	if got := DiscreteFrechet(a, b); math.Abs(got-3) > 1e-12 {
		t.Errorf("Frechet parallel=%v want 3", got)
	}
	if got := DiscreteFrechet(a, model.Trajectory{}); !math.IsInf(got, 1) {
		t.Errorf("Frechet vs empty=%v", got)
	}
	// Frechet is at least the endpoint distances.
	c := seq([3]float64{0, 0, 0}, [3]float64{10, 10, 1})
	if got := DiscreteFrechet(a, c); got < a.Samples[2].Loc.Dist(c.Samples[1].Loc) {
		t.Errorf("Frechet=%v below endpoint distance", got)
	}
}

func TestTimeSyncMaxDist(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{10, 0, 10})
	b := seq([3]float64{0, 2, 0}, [3]float64{10, 2, 10})
	if got := TimeSyncMaxDist(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("parallel sync distance=%v want 2", got)
	}
	// Same spatial path walked at different epochs: no temporal overlap.
	c := seq([3]float64{0, 0, 100}, [3]float64{10, 0, 110})
	if got := TimeSyncMaxDist(a, c); !math.IsInf(got, 1) {
		t.Errorf("disjoint epochs=%v want +Inf", got)
	}
	// Crossing paths: max at the window edges.
	d := seq([3]float64{10, 0, 0}, [3]float64{0, 0, 10})
	if got := TimeSyncMaxDist(a, d); math.Abs(got-10) > 1e-12 {
		t.Errorf("crossing=%v want 10", got)
	}
}

func TestMedianSamplingGap(t *testing.T) {
	ds := model.Dataset{
		seq([3]float64{0, 0, 0}, [3]float64{0, 0, 10}, [3]float64{0, 0, 20}),
		seq([3]float64{0, 0, 0}, [3]float64{0, 0, 30}),
	}
	if got := MedianSamplingGap(ds); got != 10 {
		t.Errorf("median gap=%v want 10", got)
	}
	if got := MedianSamplingGap(nil); got != 0 {
		t.Errorf("empty median gap=%v", got)
	}
}

func TestHausdorff(t *testing.T) {
	a := seq([3]float64{0, 0, 0}, [3]float64{10, 0, 1})
	if got := Hausdorff(a, a); got != 0 {
		t.Errorf("Hausdorff(a,a)=%v", got)
	}
	b := seq([3]float64{0, 3, 0}, [3]float64{10, 3, 1})
	if got := Hausdorff(a, b); got != 3 {
		t.Errorf("parallel Hausdorff=%v want 3", got)
	}
	// Asymmetric coverage: b covers a, but a has a far outlier.
	c := seq([3]float64{0, 0, 0}, [3]float64{10, 0, 1}, [3]float64{100, 0, 2})
	if got := Hausdorff(a, c); got != 90 {
		t.Errorf("outlier Hausdorff=%v want 90", got)
	}
	if got := Hausdorff(a, model.Trajectory{}); !math.IsInf(got, 1) {
		t.Errorf("vs empty=%v", got)
	}
	// Symmetry.
	if Hausdorff(a, c) != Hausdorff(c, a) {
		t.Error("not symmetric")
	}
}
