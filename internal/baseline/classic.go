// Package baseline implements the trajectory similarity measures STS is
// compared against in Section VI-A — CATS, EDwP, APM, KF, WGM and SST —
// plus the classic spatial metrics (DTW, LCSS, EDR, ERP, discrete Fréchet)
// those methods build on or that the related-work section discusses.
//
// All functions in this package are distances unless documented otherwise:
// smaller values mean more similar trajectories. The eval package adapts
// them to a common "higher is more similar" scorer interface.
package baseline

import (
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// DTW returns the Dynamic Time Warping distance between the location
// sequences of a and b under Euclidean ground distance (Yi et al., ICDE
// 1998). Only the spatial dimension is compared; timestamps are ignored
// beyond their ordering. Empty inputs yield +Inf.
func DTW(a, b model.Trajectory) float64 {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	// Rolling two-row DP: dp[0][0]=0, dp[0][j>0]=dp[i>0][0]=+Inf.
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			d := a.Samples[i-1].Loc.Dist(b.Samples[j-1].Loc)
			cur[j] = d + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LCSS returns the Longest Common SubSequence *distance* between a and b
// (Vlachos et al., ICDE 2002): 1 − |LCSS| / min(|a|, |b|). Two samples
// match when their locations are within eps meters and their timestamps
// within delta seconds. Empty inputs yield 1 (maximally dissimilar).
func LCSS(a, b model.Trajectory, eps, delta float64) float64 {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return 1
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		sa := a.Samples[i-1]
		for j := 1; j <= m; j++ {
			sb := b.Samples[j-1]
			if sa.Loc.Dist(sb.Loc) <= eps && math.Abs(sa.T-sb.T) <= delta {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	lcss := prev[m]
	return 1 - float64(lcss)/float64(min(n, m))
}

// EDR returns the Edit Distance on Real sequences (Chen et al., SIGMOD
// 2005), normalized by the longer length so the result lies in [0, 1].
// Two samples match (substitution cost 0) when their locations are within
// eps meters; otherwise substitution, insertion and deletion all cost 1.
func EDR(a, b model.Trajectory, eps float64) float64 {
	n, m := a.Len(), b.Len()
	if n == 0 && m == 0 {
		return 0
	}
	if n == 0 || m == 0 {
		return 1
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			subCost := 1
			if a.Samples[i-1].Loc.Dist(b.Samples[j-1].Loc) <= eps {
				subCost = 0
			}
			cur[j] = min(prev[j-1]+subCost, min(prev[j]+1, cur[j-1]+1))
		}
		prev, cur = cur, prev
	}
	return float64(prev[m]) / float64(max(n, m))
}

// ERP returns the Edit distance with Real Penalty (Chen & Ng, VLDB 2004):
// a metric edit distance where gaps are compared against a fixed reference
// point g instead of costing a constant.
func ERP(a, b model.Trajectory, g geo.Point) float64 {
	n, m := a.Len(), b.Len()
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + b.Samples[j-1].Loc.Dist(g)
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + a.Samples[i-1].Loc.Dist(g)
		for j := 1; j <= m; j++ {
			match := prev[j-1] + a.Samples[i-1].Loc.Dist(b.Samples[j-1].Loc)
			gapA := prev[j] + a.Samples[i-1].Loc.Dist(g)
			gapB := cur[j-1] + b.Samples[j-1].Loc.Dist(g)
			cur[j] = math.Min(match, math.Min(gapA, gapB))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DiscreteFrechet returns the discrete Fréchet distance between the
// location sequences of a and b: the minimax coupling distance. Empty
// inputs yield +Inf.
func DiscreteFrechet(a, b model.Trajectory) float64 {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	prev[0] = a.Samples[0].Loc.Dist(b.Samples[0].Loc)
	for j := 1; j < m; j++ {
		prev[j] = math.Max(prev[j-1], a.Samples[0].Loc.Dist(b.Samples[j].Loc))
	}
	for i := 1; i < n; i++ {
		cur[0] = math.Max(prev[0], a.Samples[i].Loc.Dist(b.Samples[0].Loc))
		for j := 1; j < m; j++ {
			d := a.Samples[i].Loc.Dist(b.Samples[j].Loc)
			cur[j] = math.Max(math.Min(prev[j-1], math.Min(prev[j], cur[j-1])), d)
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// TimeSyncMaxDist returns the time-synchronized Fréchet-style distance the
// related-work section attributes to the (continuous) Fréchet distance:
// the largest distance between the two objects' linearly interpolated
// positions over the overlap of their observation intervals, evaluated at
// the union of their timestamps. +Inf when the intervals do not overlap.
func TimeSyncMaxDist(a, b model.Trajectory) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return math.Inf(1)
	}
	lo := math.Max(a.Start(), b.Start())
	hi := math.Min(a.End(), b.End())
	if lo > hi {
		return math.Inf(1)
	}
	worst := 0.0
	eval := func(t float64) {
		if t < lo || t > hi {
			return
		}
		pa, _ := a.InterpolateAt(t)
		pb, _ := b.InterpolateAt(t)
		if d := pa.Dist(pb); d > worst {
			worst = d
		}
	}
	for _, s := range a.Samples {
		eval(s.T)
	}
	for _, s := range b.Samples {
		eval(s.T)
	}
	eval(lo)
	eval(hi)
	return worst
}

// Hausdorff returns the (symmetric) Hausdorff distance between the two
// trajectories' sample sets: the largest distance from any sample of one
// to its nearest sample of the other. A purely spatial, order-free
// metric, listed here for completeness of the classic comparison set.
func Hausdorff(a, b model.Trajectory) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return math.Inf(1)
	}
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

func directedHausdorff(a, b model.Trajectory) float64 {
	var worst float64
	for _, sa := range a.Samples {
		best := math.Inf(1)
		for _, sb := range b.Samples {
			if d := sa.Loc.Dist(sb.Loc); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
