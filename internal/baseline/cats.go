package baseline

import (
	"sort"

	"github.com/stslib/sts/internal/model"
)

// CATSParams holds the two manually defined parameters CATS relies on to
// tackle location noise and heterogeneous sampling (Section VI-A): a
// spatial tolerance Eps (meters) and a temporal window Tau (seconds).
type CATSParams struct {
	// Eps is the spatial matching tolerance: a clue farther than Eps
	// contributes nothing, a clue at zero distance contributes 1.
	Eps float64
	// Tau is the temporal window within which two samples may be coupled.
	Tau float64
}

// CATS returns the Clue-Aware Trajectory Similarity of Hung, Peng and Lee
// (VLDB Journal 2015) as a *similarity* in [0, 1]: higher means more
// similar. CATS couples as many spatially and temporally co-located sample
// pairs as possible; each sample of one trajectory collects the best
// "clue" — a linearly decaying spatial score — among the other
// trajectory's samples within the temporal window. The result is the
// symmetric average of the two directed scores.
func CATS(a, b model.Trajectory, p CATSParams) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return (catsDirected(a, b, p) + catsDirected(b, a, p)) / 2
}

// catsDirected averages, over the samples of a, the best clue found in b.
func catsDirected(a, b model.Trajectory, p CATSParams) float64 {
	var total float64
	j := 0
	for _, sa := range a.Samples {
		// Advance j to the first sample of b inside the window; b is
		// time-sorted so the window slides monotonically.
		for j < b.Len() && b.Samples[j].T < sa.T-p.Tau {
			j++
		}
		best := 0.0
		for k := j; k < b.Len() && b.Samples[k].T <= sa.T+p.Tau; k++ {
			d := sa.Loc.Dist(b.Samples[k].Loc)
			if d >= p.Eps {
				continue
			}
			clue := 1 - d/p.Eps
			if clue > best {
				best = clue
			}
		}
		total += best
	}
	return total / float64(a.Len())
}

// CATSDistance adapts CATS to the distance convention of this package:
// 1 − CATS, in [0, 1].
func CATSDistance(a, b model.Trajectory, p CATSParams) float64 {
	return 1 - CATS(a, b, p)
}

// SuggestedCATSParams scales the thresholds with the scene, following the
// usual guidance for clue-based matching: the spatial tolerance is a few
// noise radii and the temporal window a few median sampling gaps.
func SuggestedCATSParams(spatialScale, medianGap float64) CATSParams {
	return CATSParams{Eps: 4 * spatialScale, Tau: 4 * medianGap}
}

// MedianSamplingGap returns the median time gap between consecutive
// samples across the dataset, a robust scale for temporal windows. Zero is
// returned for datasets with no consecutive pairs.
func MedianSamplingGap(ds model.Dataset) float64 {
	var gaps []float64
	for _, tr := range ds {
		for i := 1; i < tr.Len(); i++ {
			gaps = append(gaps, tr.Samples[i].T-tr.Samples[i-1].T)
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	return median(gaps)
}

func median(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
