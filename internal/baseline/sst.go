package baseline

import (
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// SSTParams configures the SST measure.
type SSTParams struct {
	// SpatialScale converts point-to-segment distances to similarities
	// via exp(−d/SpatialScale).
	SpatialScale float64
	// TemporalScale converts the temporal mismatch of the matched
	// position to a similarity the same way.
	TemporalScale float64
}

// DefaultSSTParams scales SST to a scene.
func DefaultSSTParams(spatialScale, temporalScale float64) SSTParams {
	return SSTParams{SpatialScale: spatialScale, TemporalScale: temporalScale}
}

// SST returns the synchronized spatial-temporal similarity of Zhao et al.
// (GeoInformatica 2020) in [0, 1]. Each point of one trajectory is matched
// against the other trajectory using the strategy of minimal
// point-to-segment distance and maximal point-to-point similarity: the
// point is compared with the other trajectory's segment that is
// temporally synchronized with it (the segment whose time span contains
// the point's timestamp), falling back to the nearest segment in time at
// the boundaries. The spatial and temporal similarities multiply, and the
// directed scores average symmetrically.
func SST(a, b model.Trajectory, p SSTParams) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return (sstDirected(a, b, p) + sstDirected(b, a, p)) / 2
}

// SSTDistance adapts SST to the distance convention: 1 − SST.
func SSTDistance(a, b model.Trajectory, p SSTParams) float64 {
	return 1 - SST(a, b, p)
}

func sstDirected(a, b model.Trajectory, p SSTParams) float64 {
	var total float64
	for _, sa := range a.Samples {
		d, dt := matchPointToTrajectory(sa, b)
		spatial := math.Exp(-d / p.SpatialScale)
		temporal := math.Exp(-dt / p.TemporalScale)
		total += spatial * temporal
	}
	return total / float64(a.Len())
}

// matchPointToTrajectory returns the spatial distance and temporal
// mismatch of the best synchronized match of sample s on trajectory tr.
// Inside tr's time span the match is the time-synchronized interpolated
// position (temporal mismatch 0 by construction); outside, the match is
// the nearest endpoint in time, and the temporal mismatch is the gap. The
// point-to-segment rule additionally lets the match slide along the
// bracketing segment when that is spatially closer, the "minimal
// point-to-segment similarity" of the SST definition.
func matchPointToTrajectory(s model.Sample, tr model.Trajectory) (dist, dt float64) {
	if tr.Len() == 1 {
		return s.Loc.Dist(tr.Samples[0].Loc), math.Abs(s.T - tr.Samples[0].T)
	}
	switch {
	case s.T <= tr.Start():
		d, _ := geo.PointSegmentDist(s.Loc, tr.Samples[0].Loc, tr.Samples[1].Loc)
		return d, tr.Start() - s.T
	case s.T >= tr.End():
		n := tr.Len()
		d, _ := geo.PointSegmentDist(s.Loc, tr.Samples[n-2].Loc, tr.Samples[n-1].Loc)
		return d, s.T - tr.End()
	}
	exact, before, after := tr.Bracket(s.T)
	if exact >= 0 {
		return s.Loc.Dist(tr.Samples[exact].Loc), 0
	}
	pa, pb := tr.Samples[before], tr.Samples[after]
	// Time-synchronized position on the bracketing segment.
	f := (s.T - pa.T) / (pb.T - pa.T)
	sync := pa.Loc.Lerp(pb.Loc, f)
	dSync := s.Loc.Dist(sync)
	// Minimal point-to-segment distance with the implied temporal slide.
	dSeg, fSeg := geo.PointSegmentDist(s.Loc, pa.Loc, pb.Loc)
	dtSeg := math.Abs(fSeg-f) * (pb.T - pa.T)
	// Pick the match maximizing combined similarity; with equal scales
	// this is the smaller of dSync and dSeg+dtSeg in similarity space,
	// which we approximate by comparing the summed mismatch.
	if dSeg+dtSeg < dSync {
		return dSeg, dtSeg
	}
	return dSync, 0
}
