package baseline

import (
	"math"

	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// KalmanParams configures the constant-velocity Kalman filter used by the
// KF baseline.
type KalmanParams struct {
	// ProcessNoise is the acceleration noise spectral density q
	// ((m/s²)²): how much the object's velocity is allowed to wander.
	ProcessNoise float64
	// MeasurementNoise is the standard deviation of the location
	// measurements in meters.
	MeasurementNoise float64
}

// DefaultKalmanParams returns parameters scaled to a scene: measurement
// noise equal to the expected location error and a process noise loose
// enough to track turning objects.
func DefaultKalmanParams(locationError float64) KalmanParams {
	if locationError <= 0 {
		locationError = 1
	}
	return KalmanParams{ProcessNoise: 0.5, MeasurementNoise: locationError}
}

// kalman2D is a constant-velocity Kalman filter over the state
// [x, y, vx, vy], with the two axes filtered independently (the CV model
// decouples them).
type kalman2D struct {
	q, r float64
	// Per-axis state: position, velocity, and 2x2 covariance.
	x, y axisState
}

type axisState struct {
	pos, vel      float64
	p00, p01, p11 float64
	init          bool
}

func (a *axisState) predict(dt, q float64) {
	if !a.init {
		return
	}
	a.pos += a.vel * dt
	// P = F P Fᵀ + Q with F = [[1,dt],[0,1]] and the standard CV Q.
	p00 := a.p00 + dt*(a.p01+a.p01) + dt*dt*a.p11
	p01 := a.p01 + dt*a.p11
	p11 := a.p11
	dt2 := dt * dt
	a.p00 = p00 + q*dt2*dt2/4
	a.p01 = p01 + q*dt2*dt/2
	a.p11 = p11 + q*dt2
}

func (a *axisState) update(z, r float64) {
	if !a.init {
		a.pos = z
		a.vel = 0
		a.p00 = r * r
		a.p01 = 0
		a.p11 = 100 // uninformative velocity prior
		a.init = true
		return
	}
	s := a.p00 + r*r
	k0 := a.p00 / s
	k1 := a.p01 / s
	innov := z - a.pos
	a.pos += k0 * innov
	a.vel += k1 * innov
	p00 := (1 - k0) * a.p00
	p01 := (1 - k0) * a.p01
	p11 := a.p11 - k1*a.p01
	a.p00, a.p01, a.p11 = p00, p01, p11
}

// KalmanEstimate runs a constant-velocity Kalman filter over tr and
// returns the filtered trajectory: the posterior position estimate at each
// original timestamp. This is the location-estimation step of the KF
// baseline ("KF is used to estimate the object location at a given time").
func KalmanEstimate(tr model.Trajectory, p KalmanParams) model.Trajectory {
	out := model.Trajectory{ID: tr.ID, Samples: make([]model.Sample, 0, tr.Len())}
	var f kalman2D
	f.q, f.r = p.ProcessNoise, p.MeasurementNoise
	var lastT float64
	for i, s := range tr.Samples {
		if i > 0 {
			dt := s.T - lastT
			f.x.predict(dt, f.q)
			f.y.predict(dt, f.q)
		}
		f.x.update(s.Loc.X, f.r)
		f.y.update(s.Loc.Y, f.r)
		lastT = s.T
		out.Samples = append(out.Samples, model.Sample{
			Loc: geo.Point{X: f.x.pos, Y: f.y.pos},
			T:   s.T,
		})
	}
	return out
}

// KalmanPredictAt extrapolates the filter state of tr to time t and
// returns the predicted position. ok is false for empty trajectories or
// times before the first observation.
func KalmanPredictAt(tr model.Trajectory, p KalmanParams, t float64) (geo.Point, bool) {
	if tr.Len() == 0 || t < tr.Start() {
		return geo.Point{}, false
	}
	var f kalman2D
	f.q, f.r = p.ProcessNoise, p.MeasurementNoise
	var lastT float64
	for i, s := range tr.Samples {
		if s.T > t {
			break
		}
		if i > 0 {
			f.x.predict(s.T-lastT, f.q)
			f.y.predict(s.T-lastT, f.q)
		}
		f.x.update(s.Loc.X, f.r)
		f.y.update(s.Loc.Y, f.r)
		lastT = s.T
	}
	if dt := t - lastT; dt > 0 {
		f.x.predict(dt, f.q)
		f.y.predict(dt, f.q)
	}
	return geo.Point{X: f.x.pos, Y: f.y.pos}, true
}

// KF returns the KF baseline distance of Section VI-A: each trajectory's
// locations are re-estimated with a constant-velocity Kalman filter, and
// the filtered trajectories are compared with DTW.
func KF(a, b model.Trajectory, p KalmanParams) float64 {
	fa := KalmanEstimate(a, p)
	fb := KalmanEstimate(b, p)
	if fa.Len() == 0 || fb.Len() == 0 {
		return math.Inf(1)
	}
	return DTW(fa, fb)
}
