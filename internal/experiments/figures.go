package experiments

import (
	"fmt"
	"math/rand"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/model"
)

// Config holds the experiment-wide knobs. The zero value selects defaults
// sized to finish a full figure in minutes on a laptop; the paper's own
// runs take thousands of seconds (Figure 12), so reduced dataset sizes
// are the expected operating point.
type Config struct {
	// N is the number of objects in the mall scenario (default 20).
	N int
	// TaxiN is the number of taxis (default 3×N). The taxi workload is
	// cheap per pair but needs a larger corpus to be confusable, matching
	// the paper's much larger taxi dataset.
	TaxiN int
	// Seed drives all generation and sub-sampling (default 1).
	Seed int64
	// Workers bounds scoring parallelism (0 = GOMAXPROCS).
	Workers int
	// Rates overrides the sampling-rate sweep (default 0.1 … 0.9, 1.0).
	Rates []float64
	// Pairs is the number of trajectory pairs in the cross-similarity
	// experiment (default 100; the paper uses 1000).
	Pairs int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N == 0 {
		c.N = 20
	}
	if c.TaxiN == 0 {
		c.TaxiN = 3 * c.N
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if c.Pairs == 0 {
		c.Pairs = 100
	}
	return c
}

// Scenario constructs the named scenario under this configuration.
func (c Config) Scenario(name string) (Scenario, error) {
	c = c.WithDefaults()
	switch name {
	case "mall":
		return Mall(c.N, c.Seed), nil
	case "taxi":
		return Taxi(c.TaxiN, c.Seed), nil
	default:
		return Scenario{}, fmt.Errorf("experiments: unknown scenario %q (want mall or taxi)", name)
	}
}

// matchAll runs the matching experiment for every scorer on the same
// pair of datasets and returns the per-method results in scorer order.
func matchAll(d1, d2 model.Dataset, scorers []eval.Scorer, workers int) ([]eval.MatchResult, error) {
	out := make([]eval.MatchResult, len(scorers))
	for i, s := range scorers {
		r, err := eval.Matching(d1, d2, s, workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: matching with %s: %w", s.Name(), err)
		}
		out[i] = r
	}
	return out, nil
}

func methodNames(scorers []eval.Scorer) []string {
	out := make([]string, len(scorers))
	for i, s := range scorers {
		out[i] = s.Name()
	}
	return out
}

// SamplingRateSweep reproduces Figures 4 and 5: precision and mean rank
// versus the data sampling rate. For each rate q, both D(1) and D(2) are
// down-sampled at q and every measure matches the halves.
func SamplingRateSweep(sc Scenario, cfg Config) (precision, meanRank Table, err error) {
	cfg = cfg.WithDefaults()
	scorers, err := BuildScorers(sc, sc.GridSize, 0, AllMethods)
	if err != nil {
		return Table{}, Table{}, err
	}
	cols := methodNames(scorers)
	precision = Table{Title: fmt.Sprintf("Figure 4 (%s): precision vs data sampling rate", sc.Name), XLabel: "rate", Columns: cols}
	meanRank = Table{Title: fmt.Sprintf("Figure 5 (%s): mean rank vs data sampling rate", sc.Name), XLabel: "rate", Columns: cols}
	for pi, rate := range cfg.Rates {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*7919))
		d1 := model.DownsampleDataset(sc.D1, rate, rng)
		d2 := model.DownsampleDataset(sc.D2, rate, rng)
		results, err := matchAll(d1, d2, scorers, cfg.Workers)
		if err != nil {
			return Table{}, Table{}, err
		}
		pRow := make([]float64, len(results))
		rRow := make([]float64, len(results))
		for i, r := range results {
			pRow[i], rRow[i] = r.Precision, r.MeanRank
		}
		precision.AddRow(rate, pRow...)
		meanRank.AddRow(rate, rRow...)
	}
	return precision, meanRank, nil
}

// HeterogeneousSweep reproduces Figures 6 and 7: precision and mean rank
// versus the heterogeneous sampling rate α. D(1) keeps its full rate;
// only D(2) is down-sampled at α, so the two sides differ in rate by a
// factor 1/α.
func HeterogeneousSweep(sc Scenario, cfg Config) (precision, meanRank Table, err error) {
	cfg = cfg.WithDefaults()
	scorers, err := BuildScorers(sc, sc.GridSize, 0, AllMethods)
	if err != nil {
		return Table{}, Table{}, err
	}
	cols := methodNames(scorers)
	precision = Table{Title: fmt.Sprintf("Figure 6 (%s): precision vs heterogeneous rate alpha", sc.Name), XLabel: "alpha", Columns: cols}
	meanRank = Table{Title: fmt.Sprintf("Figure 7 (%s): mean rank vs heterogeneous rate alpha", sc.Name), XLabel: "alpha", Columns: cols}
	for pi, alpha := range cfg.Rates {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*104729))
		d2 := model.DownsampleDataset(sc.D2, alpha, rng)
		results, err := matchAll(sc.D1, d2, scorers, cfg.Workers)
		if err != nil {
			return Table{}, Table{}, err
		}
		pRow := make([]float64, len(results))
		rRow := make([]float64, len(results))
		for i, r := range results {
			pRow[i], rRow[i] = r.Precision, r.MeanRank
		}
		precision.AddRow(alpha, pRow...)
		meanRank.AddRow(alpha, rRow...)
	}
	return precision, meanRank, nil
}

// NoiseSweep reproduces Figures 8 and 9: precision and mean rank versus
// injected location noise β (Eq. 14). Both halves are distorted. Only
// STS is rebuilt per noise level: its noise model takes the localization
// error as an input ("the location noise distribution ... is available"),
// whereas the baselines keep their base-setting parameters, exactly as in
// the paper where their configurations come from their own prior works
// and are not re-tuned per distortion level. The down-sampling that sets
// the sweep's difficulty is drawn once and shared across levels so the
// curves isolate the effect of β.
func NoiseSweep(sc Scenario, cfg Config) (precision, meanRank Table, err error) {
	cfg = cfg.WithDefaults()
	precision = Table{Title: fmt.Sprintf("Figure 8 (%s): precision vs location noise", sc.Name), XLabel: "noise(m)", Columns: AllMethods}
	meanRank = Table{Title: fmt.Sprintf("Figure 9 (%s): mean rank vs location noise", sc.Name), XLabel: "noise(m)", Columns: AllMethods}
	baseScorers, err := BuildScorers(sc, sc.GridSize, 0, AllMethods)
	if err != nil {
		return Table{}, Table{}, err
	}
	downRng := rand.New(rand.NewSource(cfg.Seed + 7368787))
	base1 := model.DownsampleDataset(sc.D1, sc.NoiseSweepRate, downRng)
	base2 := model.DownsampleDataset(sc.D2, sc.NoiseSweepRate, downRng)
	for pi, beta := range sc.NoiseLevels {
		stsScorer, err := BuildScorers(sc, sc.GridSize, beta, []string{MethodSTS})
		if err != nil {
			return Table{}, Table{}, err
		}
		scorers := append([]eval.Scorer{stsScorer[0]}, baseScorers[1:]...)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*1299709))
		d1 := model.AddNoiseDataset(base1, beta, rng)
		d2 := model.AddNoiseDataset(base2, beta, rng)
		results, err := matchAll(d1, d2, scorers, cfg.Workers)
		if err != nil {
			return Table{}, Table{}, err
		}
		pRow := make([]float64, len(results))
		rRow := make([]float64, len(results))
		for i, r := range results {
			pRow[i], rRow[i] = r.Precision, r.MeanRank
		}
		precision.AddRow(beta, pRow...)
		meanRank.AddRow(beta, rRow...)
	}
	return precision, meanRank, nil
}

// Ablation reproduces one dataset group of Figure 10: precision and mean
// rank of STS against its variants STS-N, STS-G and STS-F under the fixed
// distortion sc.AblationNoise.
func Ablation(sc Scenario, cfg Config) (precision, meanRank Table, err error) {
	cfg = cfg.WithDefaults()
	beta := sc.AblationNoise
	rng := rand.New(rand.NewSource(cfg.Seed + 15485863))
	d1 := model.DownsampleDataset(sc.D1, sc.NoiseSweepRate, rng)
	d2 := model.DownsampleDataset(sc.D2, sc.NoiseSweepRate, rng)
	d1 = model.AddNoiseDataset(d1, beta, rng)
	d2 = model.AddNoiseDataset(d2, beta, rng)
	train := append(append(model.Dataset{}, d1...), d2...)
	scorers, err := BuildAblationScorers(sc, beta, train)
	if err != nil {
		return Table{}, Table{}, err
	}
	results, err := matchAll(d1, d2, scorers, cfg.Workers)
	if err != nil {
		return Table{}, Table{}, err
	}
	cols := methodNames(scorers)
	precision = Table{Title: fmt.Sprintf("Figure 10(a) (%s): precision of STS variants (noise %gm)", sc.Name, beta), XLabel: "noise(m)", Columns: cols}
	meanRank = Table{Title: fmt.Sprintf("Figure 10(b) (%s): mean rank of STS variants (noise %gm)", sc.Name, beta), XLabel: "noise(m)", Columns: cols}
	pRow := make([]float64, len(results))
	rRow := make([]float64, len(results))
	for i, r := range results {
		pRow[i], rRow[i] = r.Precision, r.MeanRank
	}
	precision.AddRow(beta, pRow...)
	meanRank.AddRow(beta, rRow...)
	return precision, meanRank, nil
}

// CrossSim reproduces Figure 11: the cross-similarity deviation (Eq. 13)
// versus the sampling rate α, for STS, CATS, SST and WGM, averaged over
// randomly selected trajectory pairs.
//
// Eq. 13 is a relative change of a *distance* d(Tra1, Tra2). All four
// measures here are similarities in [0, 1], so the sweep evaluates the
// deviation of d = 1 − s. Evaluating it on the raw similarity instead
// would divide by values that are numerically zero for the many random
// pairs with no spatial-temporal overlap, and the metric would measure
// floating-point noise rather than stability.
func CrossSim(sc Scenario, cfg Config) (Table, error) {
	cfg = cfg.WithDefaults()
	scorers, err := BuildScorers(sc, sc.GridSize, 0, CrossSimMethods)
	if err != nil {
		return Table{}, err
	}
	for i, s := range scorers {
		scorers[i] = oneMinus(s)
	}
	pairRng := rand.New(rand.NewSource(cfg.Seed + 32452843))
	pairs, err := eval.RandomPairs(sc.Base, cfg.Pairs, pairRng)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   fmt.Sprintf("Figure 11 (%s): cross-similarity deviation vs sampling rate", sc.Name),
		XLabel:  "rate",
		Columns: methodNames(scorers),
	}
	var alphas []float64
	for _, alpha := range cfg.Rates {
		if alpha < 1 { // deviation is 0 by construction at full rate
			alphas = append(alphas, alpha)
		}
	}
	series := make([][]float64, len(scorers))
	for i, s := range scorers {
		rng := rand.New(rand.NewSource(cfg.Seed + 2750159 + int64(i)))
		devs, err := eval.CrossSimilaritySweep(pairs, s, alphas, rng, cfg.Workers)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: cross-similarity with %s: %w", s.Name(), err)
		}
		series[i] = devs
	}
	for ai, alpha := range alphas {
		row := make([]float64, len(scorers))
		for i := range scorers {
			row[i] = series[i][ai]
		}
		t.AddRow(alpha, row...)
	}
	return t, nil
}

// oneMinus converts a [0,1]-similarity scorer into the corresponding
// distance scorer d = 1 − s, keeping the name.
func oneMinus(s eval.Scorer) eval.Scorer {
	return eval.FuncScorer{N: s.Name(), F: func(a, b model.Trajectory) (float64, error) {
		v, err := s.Score(a, b)
		return 1 - v, err
	}}
}

// GridSweep reproduces Figures 12, 13 and 14: STS's running time,
// precision and mean rank as the grid size varies. Like the noise and
// ablation experiments it runs in the calibrated sparse + distorted
// regime (DESIGN.md §4b): on full-rate clean data at this corpus size
// every grid size scores 1.0 and the effectiveness panels would carry no
// information; under sparsity and noise the paper's trade-off — finer
// grids cost time but preserve precision, with a knee near the
// localization error — becomes measurable.
func GridSweep(sc Scenario, cfg Config) (timing, precision, meanRank Table, err error) {
	cfg = cfg.WithDefaults()
	timing = Table{Title: fmt.Sprintf("Figure 12 (%s): running time vs grid size", sc.Name), XLabel: "grid(m)", Columns: []string{"time(s)"}}
	precision = Table{Title: fmt.Sprintf("Figure 13 (%s): precision vs grid size", sc.Name), XLabel: "grid(m)", Columns: []string{"precision"}}
	meanRank = Table{Title: fmt.Sprintf("Figure 14 (%s): mean rank vs grid size", sc.Name), XLabel: "grid(m)", Columns: []string{"mean rank"}}
	beta := sc.AblationNoise
	rng := rand.New(rand.NewSource(cfg.Seed + 9576890767))
	d1 := model.DownsampleDataset(sc.D1, sc.NoiseSweepRate, rng)
	d2 := model.DownsampleDataset(sc.D2, sc.NoiseSweepRate, rng)
	d1 = model.AddNoiseDataset(d1, beta, rng)
	d2 = model.AddNoiseDataset(d2, beta, rng)
	for _, gs := range sc.GridSizes {
		scorers, err := BuildScorers(sc, gs, beta, []string{MethodSTS})
		if err != nil {
			return Table{}, Table{}, Table{}, err
		}
		r, err := eval.Matching(d1, d2, scorers[0], cfg.Workers)
		if err != nil {
			return Table{}, Table{}, Table{}, err
		}
		timing.AddRow(gs, r.Elapsed.Seconds())
		precision.AddRow(gs, r.Precision)
		meanRank.AddRow(gs, r.MeanRank)
	}
	return timing, precision, meanRank, nil
}
