package experiments

import (
	"testing"

	"github.com/stslib/sts/internal/eval"
)

// TestCalibrateNoiseSweep spot-checks the noise-experiment difficulty at
// its extremes before committing to a long full run. It is a calibration
// aid rather than a correctness test, so it only runs with -run
// explicitly or outside -short mode.
func TestCalibrateNoiseSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	for _, name := range []string{"mall", "taxi"} {
		cfg := Config{N: 20}.WithDefaults()
		sc, err := cfg.Scenario(name)
		if err != nil {
			t.Fatal(err)
		}
		thin := sc
		thin.NoiseLevels = []float64{sc.NoiseLevels[0], sc.NoiseLevels[len(sc.NoiseLevels)-1]}
		prec, _, err := NoiseSweep(thin, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range prec.Rows {
			t.Logf("%s beta=%v: %v %v", name, row.X, prec.Columns, row.Values)
		}
	}
}

// TestCalibrateCATSFullRate checks CATS does not collapse at full rate:
// a regression test for the clue-tolerance scaling.
func TestCalibrateCATSFullRate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	cfg := Config{N: 20}.WithDefaults()
	sc, err := cfg.Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodCATS})
	if err != nil {
		t.Fatal(err)
	}
	r, err := eval.Matching(sc.D1, sc.D2, scorers[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CATS taxi full rate: precision=%.2f meanRank=%.2f", r.Precision, r.MeanRank)
	if r.Precision < 0.8 {
		t.Errorf("CATS still collapsing at full rate: %v", r.Precision)
	}
}
