package experiments

import (
	"context"
	"math"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
)

// pruneEps is the maximum score deviation the pruned paths are allowed
// relative to exhaustive scoring. Completed refinements accumulate in the
// same order as the unthresholded scorers, so the expectation is bit
// equality; the epsilon only guards against platform-level FMA contraction
// differences.
const pruneEps = 1e-12

// pruneWorld builds the equivalence fixture for one scenario: an engine
// over sc.D2 with the filter-and-refine path enabled (exact or profiled
// scoring), with an index pruner so the candidate flow matches serving.
func pruneWorld(t *testing.T, sc Scenario, profiled bool) *engine.Engine {
	t.Helper()
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.New(index.Options{Grid: grid, TimeBucket: 120, SpatialSlack: 400, TimeSlack: 120})
	if err != nil {
		t.Fatal(err)
	}
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{Workers: 2, Pruner: ix}
	if profiled {
		opts.Profile = &core.ProfileOptions{}
	}
	eng, err := engine.New(scorers[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range sc.D2 {
		if _, err := eng.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// assertSameMatches requires identical result sets: same length, same IDs
// in the same order, scores equal to within pruneEps.
func assertSameMatches(t *testing.T, label string, want, got []engine.Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches exhaustive vs %d pruned", label, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: rank %d: %s exhaustive vs %s pruned", label, i, want[i].ID, got[i].ID)
		}
		if d := math.Abs(want[i].Score - got[i].Score); d > pruneEps || math.IsNaN(d) {
			t.Fatalf("%s: rank %d (%s): score %.17g exhaustive vs %.17g pruned (|Δ|=%g)",
				label, i, want[i].ID, want[i].Score, got[i].Score, d)
		}
	}
}

// prunedTopKEquivalence drives the golden property of the filter-and-refine
// engine: for every query, k, and score floor, the pruned top-k result set
// is identical to the exhaustive one (TopKOpts with Exhaustive as oracle).
func prunedTopKEquivalence(t *testing.T, sc Scenario, profiled bool) {
	t.Helper()
	eng := pruneWorld(t, sc, profiled)
	ctx := context.Background()
	queries := sc.D1
	if len(queries) > 6 {
		queries = queries[:6]
	}
	floors := []float64{math.Inf(-1), 0, 0.02}
	for _, q := range queries {
		for _, k := range []int{1, 5, 10} {
			for _, floor := range floors {
				want, err := eng.TopKOpts(ctx, q, engine.TopKOptions{K: k, MinScore: floor, Exhaustive: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.TopKOpts(ctx, q, engine.TopKOptions{K: k, MinScore: floor})
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, q.ID, want, got)
			}
		}
	}
	if ps := eng.PruneStats(); ps.Considered == 0 {
		t.Error("pruned path never engaged: Considered == 0")
	}
}

func TestPrunedTopKEquivalenceMall(t *testing.T) {
	prunedTopKEquivalence(t, Mall(8, 1), false)
}

func TestPrunedTopKEquivalenceMallProfiled(t *testing.T) {
	prunedTopKEquivalence(t, Mall(8, 1), true)
}

func TestPrunedTopKEquivalenceTaxi(t *testing.T) {
	prunedTopKEquivalence(t, Taxi(24, 1), false)
}

func TestPrunedTopKEquivalenceTaxiProfiled(t *testing.T) {
	prunedTopKEquivalence(t, Taxi(24, 1), true)
}

// TestScoreBatchMinEquivalence pins the thresholded matrix against the
// exhaustive one with the floor applied after the fact: every pair at or
// above the floor keeps its exact score, every pair below it comes back
// -Inf.
func TestScoreBatchMinEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		sc       Scenario
		profiled bool
	}{
		{"taxi", Taxi(24, 1), false},
		{"taxi/profiled", Taxi(24, 1), true},
		{"mall", Mall(8, 1), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := pruneWorld(t, tc.sc, tc.profiled)
			ctx := context.Background()
			full, err := eng.ScoreBatch(ctx, tc.sc.D1, tc.sc.D2, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, floor := range []float64{0.02, 0.1} {
				got, err := eng.ScoreBatchMin(ctx, tc.sc.D1, tc.sc.D2, nil, floor)
				if err != nil {
					t.Fatal(err)
				}
				for i := range full {
					for j := range full[i] {
						want := full[i][j]
						if want < floor || math.IsNaN(want) {
							want = math.Inf(-1)
						}
						d := math.Abs(want - got[i][j])
						if want == got[i][j] || d <= pruneEps {
							continue
						}
						t.Fatalf("floor=%g [%d][%d]: %.17g exhaustive vs %.17g thresholded",
							floor, i, j, want, got[i][j])
					}
				}
			}
		})
	}
}

// TestScoreMatrixMinEquivalence covers the one-shot eval entry point on
// both scorer kinds: measure-backed scorers run the filter-and-refine
// path, generic scorers score exhaustively and floor afterwards — the
// results must agree.
func TestScoreMatrixMinEquivalence(t *testing.T) {
	sc := Taxi(24, 1)
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
	if err != nil {
		t.Fatal(err)
	}
	ms := scorers[0]
	// The same measure wrapped as an opaque func: forces the generic path.
	generic := eval.FuncScorer{N: "STS-opaque", F: func(a, b model.Trajectory) (float64, error) {
		return ms.Score(a, b)
	}}
	const floor = 0.02
	pruned, err := eval.ScoreMatrixMin(sc.D1, sc.D2, ms, nil, floor, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eval.ScoreMatrixMin(sc.D1, sc.D2, generic, nil, floor, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		for j := range plain[i] {
			if plain[i][j] == pruned[i][j] {
				continue
			}
			if d := math.Abs(plain[i][j] - pruned[i][j]); !(d <= pruneEps) {
				t.Fatalf("[%d][%d]: %.17g generic vs %.17g pruned", i, j, plain[i][j], pruned[i][j])
			}
		}
	}
}

// TestGreedyLinkMinEquivalence pins linking on top of the pruned matrix:
// with a positive MinScore the measure-backed scorer routes through
// filter-and-refine, and the resulting one-to-one links must be identical
// to those computed from the exhaustively scored matrix.
func TestGreedyLinkMinEquivalence(t *testing.T) {
	sc := Taxi(24, 1)
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
	if err != nil {
		t.Fatal(err)
	}
	ms := scorers[0]
	generic := eval.FuncScorer{N: "STS-opaque", F: func(a, b model.Trajectory) (float64, error) {
		return ms.Score(a, b)
	}}
	for _, minScore := range []float64{1e-9, 0.05} {
		want, err := linking.GreedyLink(sc.D1, sc.D2, generic, linking.Options{MinScore: minScore, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := linking.GreedyLink(sc.D1, sc.D2, ms, linking.Options{MinScore: minScore, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("min=%g: %d links generic vs %d pruned", minScore, len(want), len(got))
		}
		for i := range want {
			if want[i].I != got[i].I || want[i].J != got[i].J {
				t.Fatalf("min=%g link %d: (%d,%d) generic vs (%d,%d) pruned",
					minScore, i, want[i].I, want[i].J, got[i].I, got[i].J)
			}
			if d := math.Abs(want[i].Score - got[i].Score); !(d <= pruneEps) {
				t.Fatalf("min=%g link %d: score %.17g vs %.17g", minScore, i, want[i].Score, got[i].Score)
			}
		}
	}
}
