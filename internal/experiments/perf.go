package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/datagen"
	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/index"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/linking"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/store"
	"github.com/stslib/sts/internal/stream"
)

// PerfOptions configures the benchmark-regression harness behind
// `stsbench -bench`.
type PerfOptions struct {
	// MinTime is the minimum measured time per benchmark (default 1s).
	MinTime time.Duration
	// Workers bounds scoring parallelism (default 1, so ns/op numbers are
	// comparable across machines with different core counts).
	Workers int
	// BaselinePath, when set, names a previously written report whose
	// numbers are merged into the output as the baseline, with speedups
	// computed per benchmark.
	BaselinePath string
	// ProfileBucket is the bucket width in seconds of the profile_*
	// benches (0 selects core.DefaultProfileBucketSeconds).
	ProfileBucket float64
	// GatePercent, with BaselinePath, turns the run into a regression
	// gate: RunPerf returns an error when any benchmark shared with the
	// baseline slowed down by more than this percent (ns/op ratio). Zero
	// disables the gate.
	GatePercent float64
	// WorkersAxis lists the extra worker counts the parallel-scaling rows
	// run at (matrix scoring, engine top-k, pruned top-k). Scaled rows are
	// named "<bench>/workers=<n>" so the canonical single-worker names stay
	// comparable across reports, and each carries its parallel efficiency
	// against the canonical row. Empty selects DefaultWorkersAxis.
	WorkersAxis []int
	// ShardsAxis lists the partition counts the sharded-scaling rows run at
	// (concurrent ingest and pruned top-k through the sharded coordinator,
	// named "<bench>/shards=<n>"). Empty selects DefaultShardsAxis.
	ShardsAxis []int
	// Repeat runs each benchmark this many times and reports the median
	// run by ns/op (lower median on even counts), damping the
	// single-run box noise that otherwise shows up as phantom
	// speedup_vs_baseline drift on unchanged code. Values below 1 mean a
	// single run; the report records the value so gates know what they
	// compared.
	Repeat int
}

// DefaultWorkersAxis is the worker-count axis of the parallel-scaling rows:
// 1, half the CPUs, and all CPUs, deduplicated. On a single-CPU machine the
// hardware axis collapses to {1}, so an oversubscription rung is added —
// it cannot show hardware speedup, but it still exercises the scheduling
// and contention paths (pool churn, cache single-flight, shared counters)
// the multi-worker posture is about.
func DefaultWorkersAxis() []int {
	ncpu := runtime.NumCPU()
	axis := []int{1}
	for _, n := range []int{ncpu / 2, ncpu} {
		if n > axis[len(axis)-1] {
			axis = append(axis, n)
		}
	}
	if len(axis) == 1 {
		axis = append(axis, 4)
	}
	return axis
}

// DefaultShardsAxis is the partition-count axis of the sharded-scaling
// rows: 1 (the single-engine baseline) through 8, doubling. It is fixed
// rather than CPU-derived because the effect sharding targets — removing
// the global write lock and the store coordinator from the mutation
// path — shows up as reduced contention even when the shards timeshare
// few cores; real parallel speedup additionally needs the cores.
func DefaultShardsAxis() []int { return []int{1, 2, 4, 8} }

// PerfBench is one benchmark row of the report.
type PerfBench struct {
	// Name identifies the benchmark ("matrix_scoring/mall/grid=3" …).
	Name string `json:"name"`
	// Iterations is the iteration count of the final measured run.
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// PairsPerSec is the scored-pair throughput, for benchmarks whose op
	// covers a known number of trajectory pairs (0 otherwise).
	PairsPerSec float64 `json:"pairs_per_sec,omitempty"`
	// CacheHitRate is the engine's prepared-cache hit rate over the whole
	// measured run, for benchmarks that serve queries through a persistent
	// engine (0 otherwise).
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// PruneRate is the fraction of candidate pairs the filter-and-refine
	// path disposed of without full refinement — (bound-pruned +
	// early-exited) / considered — for benchmarks that run the pruned path
	// (0 otherwise).
	PruneRate float64 `json:"prune_rate,omitempty"`
	// Workers is the worker count this row ran at.
	Workers int `json:"workers,omitempty"`
	// Shards is the partition count of the "/shards=<n>" sharded-scaling
	// rows (0 on rows that do not go through the engine layer's router).
	Shards int `json:"shards,omitempty"`
	// BytesPerTrajectory is the live encoded footprint per corpus record,
	// for the columnar-store benches (0 otherwise).
	BytesPerTrajectory float64 `json:"bytes_per_trajectory,omitempty"`
	// RecoverSeconds is the boot-time recovery duration (snapshot load +
	// WAL replay) of the final measured run, for corpus_recover (0
	// otherwise).
	RecoverSeconds float64 `json:"recover_seconds,omitempty"`
	// ParallelEfficiency is, for the scaled "/workers=<n>" rows, the
	// speedup over the same benchmark's canonical row divided by the ideal
	// speedup (n / canonical workers) — 1.0 is perfect scaling. Zero on
	// canonical rows.
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
	// Baseline numbers and the derived speedup (ratio of baseline ns/op to
	// current ns/op), present only when PerfOptions.BaselinePath was given.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselinePairsPerSec float64 `json:"baseline_pairs_per_sec,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup_vs_baseline,omitempty"`
}

// PerfReport is the machine-readable artifact (BENCH_<n>.json) committed by
// each perf-sensitive PR so later PRs have a trajectory to compare against.
type PerfReport struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	// WorkersAxis lists the worker counts the parallel-scaling rows ran at
	// (schema ≥ 2).
	WorkersAxis []int `json:"workers_axis,omitempty"`
	// ShardsAxis lists the partition counts the sharded-scaling rows ran at
	// (schema ≥ 3).
	ShardsAxis []int `json:"shards_axis,omitempty"`
	// Repeat is the median-of-N repetition count each row was measured at
	// (schema ≥ 4; absent means single-run).
	Repeat  int         `json:"repeat,omitempty"`
	N       int         `json:"n"`
	Seed    int64       `json:"seed"`
	Benches []PerfBench `json:"benches"`
}

// measureLoop runs op repeatedly, testing-style: iteration counts grow until
// one measured run lasts at least minTime. The final run reports ns, allocs
// and bytes per op. Allocation counters are process-global, so benchmarks
// must not run concurrently with other work.
func measureLoop(minTime time.Duration, op func() error) (PerfBench, error) {
	var out PerfBench
	if err := op(); err != nil { // warm caches, trigger lazy init
		return out, err
	}
	n := 1
	for {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := op(); err != nil {
				return out, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= minTime || n >= 1e8 {
			fn := float64(n)
			out.Iterations = n
			out.NsPerOp = float64(elapsed.Nanoseconds()) / fn
			out.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / fn
			out.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / fn
			return out, nil
		}
		// Grow like the testing package: predict from the last run, with
		// 20% headroom, at least +1, at most 100x.
		next := int(1.2 * float64(n) * float64(minTime) / (float64(elapsed) + 1))
		if next > 100*n {
			next = 100 * n
		}
		if next <= n {
			next = n + 1
		}
		n = next
	}
}

// measureMedian measures op `repeat` independent times and returns the
// median run by ns/op (the lower median on even counts), whole — its
// iteration count and alloc numbers come from the same run, so the row is
// internally consistent. One run degenerates to measureLoop.
func measureMedian(minTime time.Duration, repeat int, op func() error) (PerfBench, error) {
	runs := make([]PerfBench, 0, repeat)
	for r := 0; r < repeat; r++ {
		b, err := measureLoop(minTime, op)
		if err != nil {
			return PerfBench{}, err
		}
		runs = append(runs, b)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].NsPerOp < runs[j].NsPerOp })
	return runs[(len(runs)-1)/2], nil
}

// RunPerf runs the benchmark suite and writes the JSON report to outPath,
// echoing a human-readable summary to w.
func RunPerf(cfg Config, opts PerfOptions, outPath string, w io.Writer) error {
	if opts.MinTime <= 0 {
		opts.MinTime = time.Second
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	axis := opts.WorkersAxis
	if len(axis) == 0 {
		axis = DefaultWorkersAxis()
	}
	shardsAxis := opts.ShardsAxis
	if len(shardsAxis) == 0 {
		shardsAxis = DefaultShardsAxis()
	}
	n := cfg.N
	if n <= 0 {
		n = 8
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Load the baseline before the (minutes-long) run so a bad path fails
	// fast instead of after the work is done.
	var base *PerfReport
	if opts.BaselinePath != "" {
		b, err := loadBaseline(opts.BaselinePath)
		if err != nil {
			return err
		}
		base = b
	}
	repeat := opts.Repeat
	if repeat < 1 {
		repeat = 1
	}
	report := PerfReport{
		Schema:      4,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		WorkersAxis: axis,
		ShardsAxis:  shardsAxis,
		Repeat:      repeat,
		N:           n,
		Seed:        seed,
	}
	scenarios := []Scenario{Mall(n, seed), Taxi(3*n, seed)}

	add := func(name string, pairs int, op func() error) error {
		fmt.Fprintf(w, "%-42s", name)
		b, err := measureMedian(opts.MinTime, repeat, op)
		if err != nil {
			fmt.Fprintln(w, "ERROR")
			return fmt.Errorf("experiments: bench %s: %w", name, err)
		}
		b.Name = name
		b.Workers = workers
		if pairs > 0 {
			b.PairsPerSec = float64(pairs) * 1e9 / b.NsPerOp
		}
		fmt.Fprintf(w, "%12.0f ns/op %10.1f allocs/op", b.NsPerOp, b.AllocsPerOp)
		if pairs > 0 {
			fmt.Fprintf(w, " %10.1f pairs/s", b.PairsPerSec)
		}
		fmt.Fprintln(w)
		report.Benches = append(report.Benches, b)
		return nil
	}

	// addScaled appends one "/workers=<n>" row per axis rung beyond the
	// canonical worker count, computing each rung's parallel efficiency
	// against the canonical row just added (which must be last in Benches).
	// mk builds the op for one worker count — a fresh engine per rung where
	// the worker pool is bound at construction.
	addScaled := func(name string, pairs int, mk func(nw int) (func() error, error)) error {
		base := report.Benches[len(report.Benches)-1]
		for _, nw := range axis {
			if nw == workers {
				continue
			}
			op, err := mk(nw)
			if err != nil {
				return err
			}
			if err := add(fmt.Sprintf("%s/workers=%d", name, nw), pairs, op); err != nil {
				return err
			}
			row := &report.Benches[len(report.Benches)-1]
			row.Workers = nw
			if base.NsPerOp > 0 && row.NsPerOp > 0 {
				row.ParallelEfficiency = (base.NsPerOp / row.NsPerOp) / (float64(nw) / float64(workers))
			}
		}
		return nil
	}

	profOpts := core.ProfileOptions{BucketSeconds: opts.ProfileBucket}

	// Matrix scoring at two grid scales per scenario: the default cell size
	// and a 2x finer grid (more cells per noise support, the regime the
	// offset memoization targets).
	for _, sc := range scenarios {
		for _, scale := range []float64{1, 0.5} {
			gridSize := sc.GridSize * scale
			scorers, err := BuildScorers(sc, gridSize, 0, []string{MethodSTS})
			if err != nil {
				return err
			}
			ms := scorers[0].(*eval.STSScorer)
			pairs := len(sc.D1) * len(sc.D2)
			name := fmt.Sprintf("matrix_scoring/%s/grid=%g", sc.Name, gridSize)
			if err := add(name, pairs, func() error {
				_, err := ms.ScoreMatrix(sc.D1, sc.D2, workers)
				return err
			}); err != nil {
				return err
			}
			if scale == 1 {
				err := addScaled(name, pairs, func(nw int) (func() error, error) {
					return func() error {
						_, err := ms.ScoreMatrix(sc.D1, sc.D2, nw)
						return err
					}, nil
				})
				if err != nil {
					return err
				}
			}
		}
	}

	// Profiled matrix scoring: the same workload as matrix_scoring at the
	// default grid, through bucketed S-T profiles — each op rebuilds every
	// profile (one interpolation pass per trajectory) and then scores all
	// pairs as sparse dot-product merges, so the headline speedup already
	// pays the full build cost.
	for _, sc := range scenarios {
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		ps := eval.NewSTSScorerProfiled("STS-P", scorers[0].(*eval.STSScorer).Measure(), profOpts)
		pairs := len(sc.D1) * len(sc.D2)
		name := fmt.Sprintf("profile_matrix/%s/grid=%g", sc.Name, sc.GridSize)
		if err := add(name, pairs, func() error {
			_, err := ps.ScoreMatrix(sc.D1, sc.D2, workers)
			return err
		}); err != nil {
			return err
		}
	}

	// Steady-state single-pair scoring with cached preparation: the
	// allocs/op headline of the zero-allocation workspace design.
	{
		sc := scenarios[0]
		grid, err := sc.Grid(sc.GridSize, 0)
		if err != nil {
			return err
		}
		m, err := core.NewSTS(grid, sc.Sigma(0))
		if err != nil {
			return err
		}
		pa, err := m.Prepare(sc.D1[0])
		if err != nil {
			return err
		}
		pb, err := m.Prepare(sc.D2[1])
		if err != nil {
			return err
		}
		if err := add("similarity_prepared/mall", 1, func() error {
			_, err := m.SimilarityPrepared(pa, pb)
			return err
		}); err != nil {
			return err
		}
	}

	// Greedy linking with the FTL feasibility pre-filter engaged.
	{
		sc := scenarios[1]
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		pooled, err := kde.NewPooledSpeedModel(sc.Base)
		if err != nil {
			return err
		}
		lopts := linking.Options{MinScore: 1e-9, MaxSpeed: pooled.MaxSpeed(), Workers: workers}
		pairs := len(sc.D1) * len(sc.D2)
		if err := add("linking_greedy/taxi", pairs, func() error {
			_, err := linking.GreedyLink(sc.D1, sc.D2, scorers[0], lopts)
			return err
		}); err != nil {
			return err
		}
	}

	// Top-k search through the inverted spatio-temporal index.
	{
		sc := scenarios[1]
		grid, err := sc.Grid(sc.GridSize, 0)
		if err != nil {
			return err
		}
		ix, err := index.Build(sc.D2, index.Options{
			Grid:         grid,
			TimeBucket:   120,
			SpatialSlack: 400,
			TimeSlack:    120,
		})
		if err != nil {
			return err
		}
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		query := sc.D1[0]
		if err := add("topk_index/taxi", len(sc.D2), func() error {
			_, err := ix.TopK(query, scorers[0], 5, workers)
			return err
		}); err != nil {
			return err
		}
	}

	// Top-k served by a persistent engine: the index prunes candidates and
	// the LRU cache reuses each trajectory's preparation across queries —
	// the steady-state serving path the engine layer exists for.
	{
		sc := scenarios[1]
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		// DisablePruning keeps this row the exhaustive serving baseline it has
		// been since it was introduced; the filter-and-refine regime has its
		// own pruned_topk row below.
		mkEng := func(nw int) (*engine.Engine, error) {
			grid, err := sc.Grid(sc.GridSize, 0)
			if err != nil {
				return nil, err
			}
			ix, err := index.New(index.Options{
				Grid:         grid,
				TimeBucket:   120,
				SpatialSlack: 400,
				TimeSlack:    120,
			})
			if err != nil {
				return nil, err
			}
			eng, err := engine.New(scorers[0], engine.Options{Workers: nw, Pruner: ix, DisablePruning: true})
			if err != nil {
				return nil, err
			}
			for _, tr := range sc.D2 {
				if _, err := eng.Add(tr); err != nil {
					return nil, err
				}
			}
			return eng, nil
		}
		eng, err := mkEng(workers)
		if err != nil {
			return err
		}
		qi := 0
		if err := add("engine_topk/taxi", len(sc.D2), func() error {
			q := sc.D1[qi%len(sc.D1)]
			qi++
			_, err := eng.TopK(context.Background(), q, 5)
			return err
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].CacheHitRate = eng.CacheStats().HitRate()
		err = addScaled("engine_topk/taxi", len(sc.D2), func(nw int) (func() error, error) {
			e, err := mkEng(nw)
			if err != nil {
				return nil, err
			}
			qj := 0
			return func() error {
				q := sc.D1[qj%len(sc.D1)]
				qj++
				_, err := e.TopK(context.Background(), q, 5)
				return err
			}, nil
		})
		if err != nil {
			return err
		}
	}

	// Top-k served by a persistent *profiled* engine: same corpus, index and
	// query mix as engine_topk, but pair scoring runs over cached bucketed
	// profiles — the steady-state regime where the per-trajectory STP work
	// is fully amortized and each query pays only sparse dot products.
	{
		sc := scenarios[1]
		grid, err := sc.Grid(sc.GridSize, 0)
		if err != nil {
			return err
		}
		ix, err := index.New(index.Options{
			Grid:         grid,
			TimeBucket:   120,
			SpatialSlack: 400,
			TimeSlack:    120,
		})
		if err != nil {
			return err
		}
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		eng, err := engine.New(scorers[0], engine.Options{Workers: workers, Pruner: ix, Profile: &profOpts, DisablePruning: true})
		if err != nil {
			return err
		}
		for _, tr := range sc.D2 {
			if _, err := eng.Add(tr); err != nil {
				return err
			}
		}
		qi := 0
		if err := add("profile_topk/taxi", len(sc.D2), func() error {
			q := sc.D1[qi%len(sc.D1)]
			qi++
			_, err := eng.TopK(context.Background(), q, 5)
			return err
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].CacheHitRate = eng.ProfileCacheStats().HitRate()
	}

	// Filter-and-refine top-k: the same serving path as engine_topk but at
	// k=10 over a larger corpus (the corpus >> k regime pruning targets),
	// measured exhaustive and pruned over identical engines. The pruned
	// engine bound-orders candidates by their admissible upper bound and
	// refines only those that can still beat the running k-th-best score;
	// both rows return identical result sets.
	{
		sc := Taxi(8*n, seed)
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		newEng := func(disable bool, nw int) (*engine.Engine, error) {
			grid, err := sc.Grid(sc.GridSize, 0)
			if err != nil {
				return nil, err
			}
			ix, err := index.New(index.Options{
				Grid:         grid,
				TimeBucket:   120,
				SpatialSlack: 400,
				TimeSlack:    120,
			})
			if err != nil {
				return nil, err
			}
			eng, err := engine.New(scorers[0], engine.Options{Workers: nw, Pruner: ix, DisablePruning: disable})
			if err != nil {
				return nil, err
			}
			for _, tr := range sc.D2 {
				if _, err := eng.Add(tr); err != nil {
					return nil, err
				}
			}
			return eng, nil
		}
		exh, err := newEng(true, workers)
		if err != nil {
			return err
		}
		qi := 0
		if err := add("exhaustive_topk/taxi/k=10", len(sc.D2), func() error {
			q := sc.D1[qi%len(sc.D1)]
			qi++
			_, err := exh.TopK(context.Background(), q, 10)
			return err
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].CacheHitRate = exh.CacheStats().HitRate()

		prn, err := newEng(false, workers)
		if err != nil {
			return err
		}
		qj := 0
		if err := add("pruned_topk/taxi/k=10", len(sc.D2), func() error {
			q := sc.D1[qj%len(sc.D1)]
			qj++
			_, err := prn.TopK(context.Background(), q, 10)
			return err
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].CacheHitRate = prn.CacheStats().HitRate()
		report.Benches[len(report.Benches)-1].PruneRate = pruneRate(prn.PruneStats())
		err = addScaled("pruned_topk/taxi/k=10", len(sc.D2), func(nw int) (func() error, error) {
			e, err := newEng(false, nw)
			if err != nil {
				return nil, err
			}
			qk := 0
			return func() error {
				q := sc.D1[qk%len(sc.D1)]
				qk++
				_, err := e.TopK(context.Background(), q, 10)
				return err
			}, nil
		})
		if err != nil {
			return err
		}

		// Sharded pruned top-k: the same corpus and query mix scattered
		// across engine shards, each with its own index pruner, so the
		// "/shards=<n>" family traces how scatter-gather with MinScore-floor
		// forwarding scales with partition count (shards=1 restates the
		// single engine so the curve is self-contained). Results are
		// bit-identical across the axis; only the partitioning varies.
		newSvc := func(nsh int) (engine.Service, error) {
			if nsh == 1 {
				return newEng(false, workers)
			}
			svc, err := engine.NewSharded(scorers[0], engine.ShardedOptions{
				Shards:  nsh,
				Workers: workers,
				ShardOptions: func(int) (engine.Options, error) {
					grid, err := sc.Grid(sc.GridSize, 0)
					if err != nil {
						return engine.Options{}, err
					}
					ix, err := index.New(index.Options{
						Grid:         grid,
						TimeBucket:   120,
						SpatialSlack: 400,
						TimeSlack:    120,
					})
					if err != nil {
						return engine.Options{}, err
					}
					return engine.Options{
						Workers: engine.SplitWorkers(workers, engine.DefaultFanOut),
						Pruner:  ix,
					}, nil
				},
			})
			if err != nil {
				return nil, err
			}
			for _, tr := range sc.D2 {
				if _, err := svc.Add(tr); err != nil {
					return nil, err
				}
			}
			return svc, nil
		}
		for _, nsh := range shardsAxis {
			svc, err := newSvc(nsh)
			if err != nil {
				return err
			}
			qs := 0
			if err := add(fmt.Sprintf("pruned_topk/taxi/k=10/shards=%d", nsh), len(sc.D2), func() error {
				q := sc.D1[qs%len(sc.D1)]
				qs++
				_, err := svc.TopK(context.Background(), q, 10)
				return err
			}); err != nil {
				return err
			}
			row := &report.Benches[len(report.Benches)-1]
			row.Shards = nsh
			row.CacheHitRate = svc.CacheStats().HitRate()
			row.PruneRate = pruneRate(svc.PruneStats())
		}
	}

	// Repeated batch rescoring through a persistent engine: after the first
	// batch every preparation is a cache hit, so this isolates the pure
	// scoring cost a long-lived server pays per request.
	{
		sc := scenarios[0]
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		eng, err := engine.New(scorers[0], engine.Options{Workers: workers})
		if err != nil {
			return err
		}
		pairs := len(sc.D1) * len(sc.D2)
		if err := add("engine_rescore/mall", pairs, func() error {
			_, err := eng.ScoreBatch(context.Background(), sc.D1, sc.D2, nil)
			return err
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].CacheHitRate = eng.CacheStats().HitRate()
	}

	// Thresholded matrix scoring: the engine_rescore workload with a score
	// floor, through ScoreBatchMin — each pair is bound-checked first and
	// refinement early-exits as soon as the exact score provably cannot
	// reach the floor, so sub-threshold pairs come back as -Inf without
	// full scoring.
	{
		sc := scenarios[0]
		scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		eng, err := engine.New(scorers[0], engine.Options{Workers: workers})
		if err != nil {
			return err
		}
		// The 0.01 floor sits at ~P90 of the mall score distribution, so the
		// strong pairs refine to completion and the bulk prunes or exits.
		pairs := len(sc.D1) * len(sc.D2)
		if err := add("threshold_matrix/mall/min=0.01", pairs, func() error {
			_, err := eng.ScoreBatchMin(context.Background(), sc.D1, sc.D2, nil, 0.01)
			return err
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].CacheHitRate = eng.CacheStats().HitRate()
		report.Benches[len(report.Benches)-1].PruneRate = pruneRate(eng.PruneStats())
	}

	// Concurrent ingest through the engine layer across the shards axis:
	// 8 writer goroutines push a synthetic corpus into a fresh in-memory
	// service per op. At shards=1 every Add serializes on the engine's
	// write mutex and the store coordinator; with more shards writes to
	// different partitions never share a lock, so the family measures how
	// much of the mutation path the partitioned router takes off the
	// contended spine (hardware parallelism additionally needs the cores).
	{
		const (
			nTraj   = 2000
			writers = 8
		)
		cfg := datagen.DefaultSynthConfig(nTraj)
		trs := make([]model.Trajectory, nTraj)
		for i := range trs {
			trs[i] = datagen.SynthTrajectory(cfg, i)
		}
		scorers, err := BuildScorers(scenarios[0], scenarios[0].GridSize, 0, []string{MethodSTS})
		if err != nil {
			return err
		}
		newSvc := func(nsh int) (engine.Service, error) {
			if nsh == 1 {
				return engine.New(scorers[0], engine.Options{})
			}
			return engine.NewSharded(scorers[0], engine.ShardedOptions{
				Shards:       nsh,
				ShardOptions: func(int) (engine.Options, error) { return engine.Options{}, nil },
			})
		}
		for _, nsh := range shardsAxis {
			if err := add(fmt.Sprintf("sharded_ingest/synth/shards=%d", nsh), 0, func() error {
				svc, err := newSvc(nsh)
				if err != nil {
					return err
				}
				if err := engine.ForEach(context.Background(), writers, writers, func(wi int) error {
					for i := wi; i < nTraj; i += writers {
						if _, err := svc.Add(trs[i]); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return err
				}
				if svc.Len() != nTraj {
					return fmt.Errorf("sharded ingest: %d records, want %d", svc.Len(), nTraj)
				}
				return svc.Close()
			}); err != nil {
				return err
			}
			report.Benches[len(report.Benches)-1].Shards = nsh
		}
	}

	// Columnar corpus ingest and recovery: the durability path end to end.
	// corpus_ingest encodes a synthetic workload into a fresh durable store
	// (arena encode + WAL append per trajectory) and reports the live
	// encoded footprint per record; corpus_recover reopens a directory that
	// holds the same corpus and reports how long the snapshot load + WAL
	// replay took. Fsync batching is disabled so the rows measure the
	// store, not the disk's flush latency.
	{
		const nTraj = 2000
		cfg := datagen.DefaultSynthConfig(nTraj)
		trs := make([]model.Trajectory, nTraj)
		for i := range trs {
			trs[i] = datagen.SynthTrajectory(cfg, i)
		}
		stOpts := store.Options{
			CoordStep:     store.StepForSigma(50),
			FsyncInterval: -1,
			SnapshotEvery: -1,
		}
		root, err := os.MkdirTemp("", "stsbench-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)

		var liveBytes int64
		sub := 0
		if err := add(fmt.Sprintf("corpus_ingest/synth/n=%d", nTraj), 0, func() error {
			dir := fmt.Sprintf("%s/ingest-%d", root, sub)
			sub++
			st, err := store.Open(dir, stOpts)
			if err != nil {
				return err
			}
			for _, tr := range trs {
				if _, err := st.Add(tr); err != nil {
					return err
				}
			}
			liveBytes = st.Stats().LiveBytes
			if err := st.Close(); err != nil {
				return err
			}
			return os.RemoveAll(dir)
		}); err != nil {
			return err
		}
		report.Benches[len(report.Benches)-1].BytesPerTrajectory = float64(liveBytes) / nTraj

		recDir := root + "/recover"
		st, err := store.Open(recDir, stOpts)
		if err != nil {
			return err
		}
		for _, tr := range trs {
			if _, err := st.Add(tr); err != nil {
				return err
			}
		}
		if err := st.Close(); err != nil {
			return err
		}
		var rec store.RecoveryInfo
		if err := add(fmt.Sprintf("corpus_recover/synth/n=%d", nTraj), 0, func() error {
			st, err := store.Open(recDir, stOpts)
			if err != nil {
				return err
			}
			if st.Len() != nTraj {
				st.Close()
				return fmt.Errorf("recovered %d records, want %d", st.Len(), nTraj)
			}
			rec, _ = st.Recovery()
			return st.Close()
		}); err != nil {
			return err
		}
		row := &report.Benches[len(report.Benches)-1]
		row.RecoverSeconds = rec.Duration.Seconds()
		row.BytesPerTrajectory = float64(liveBytes) / nTraj
	}

	// Streaming ingestion and standing-query evaluation: the two hot paths
	// of the live-subscription subsystem. append_ingest measures
	// Engine.Append alone — tail validation, columnar re-encode, WAL frame,
	// and the generation-scoped refresh of cached derived state — on a
	// resident synth corpus. standing_eval adds the subscription work: each
	// append re-evaluates one watchlist through the ScoreBatchMin floor, so
	// the row's prune rate reports how much of the candidate set the
	// admissible upper bound disposes of before refinement. The corpus pairs
	// every original with a mirrored twin and watches the first mirrors:
	// each evaluation scores one genuinely co-located pair (refines, alerts)
	// against a majority of temporally disjoint ones (pruned), the
	// steady-state shape of a live watchlist.
	{
		const (
			nTraj  = 256
			batch  = 5
			nWatch = 8
			theta  = 0.05
		)
		cfg := datagen.DefaultSynthConfig(nTraj)
		originals := make([]model.Trajectory, nTraj)
		var bounds geo.Rect
		for i := range originals {
			originals[i] = datagen.SynthTrajectory(cfg, i)
			b := originals[i].Bounds()
			if i == 0 {
				bounds = b
			} else {
				bounds = bounds.Union(b)
			}
		}
		const (
			gridSize = 50.0
			sigma    = 25.0
		)
		grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
		if err != nil {
			return err
		}
		m, err := core.NewSTS(grid, sigma)
		if err != nil {
			return err
		}
		newCorpus := func(mirrors bool) (*engine.Engine, []float64, error) {
			eng, err := engine.New(eval.NewSTSScorer("STS", m), engine.Options{Workers: workers})
			if err != nil {
				return nil, nil, err
			}
			lastT := make([]float64, nTraj)
			for i, tr := range originals {
				if _, err := eng.Add(tr); err != nil {
					return nil, nil, err
				}
				lastT[i] = tr.Samples[len(tr.Samples)-1].T
				if mirrors {
					mt := model.Trajectory{ID: tr.ID + "~b", Samples: tr.Samples}
					if _, err := eng.Add(mt); err != nil {
						return nil, nil, err
					}
				}
			}
			return eng, lastT, nil
		}
		// nextTail extends trajectory k past its high-water mark: the object
		// holds position and keeps reporting, the cheapest valid continuation,
		// so the row isolates the append machinery rather than the generator.
		nextTail := func(lastT []float64, k int) []model.Sample {
			tail := make([]model.Sample, batch)
			t := lastT[k]
			loc := originals[k].Samples[len(originals[k].Samples)-1].Loc
			for j := range tail {
				t += cfg.ReportPeriod
				tail[j] = model.Sample{T: t, Loc: loc}
			}
			lastT[k] = t
			return tail
		}

		eng, lastT, err := newCorpus(false)
		if err != nil {
			return err
		}
		ai := 0
		if err := add(fmt.Sprintf("append_ingest/synth/batch=%d", batch), 0, func() error {
			k := ai % nTraj
			ai++
			_, err := eng.Append(originals[k].ID, nextTail(lastT, k))
			return err
		}); err != nil {
			return err
		}
		if err := eng.Close(); err != nil {
			return err
		}

		eng, lastT, err = newCorpus(true)
		if err != nil {
			return err
		}
		members := make([]string, nWatch)
		for i := range members {
			members[i] = originals[i].ID + "~b"
		}
		reg, err := stream.NewRegistry(eng, stream.Options{})
		if err != nil {
			return err
		}
		if err := reg.Set(stream.Watch{Name: "bench", Members: members, Theta: theta}); err != nil {
			return err
		}
		si := 0
		if err := add(fmt.Sprintf("standing_eval/synth/watch=%d", nWatch), nWatch, func() error {
			k := si % nTraj
			si++
			id := originals[k].ID
			if _, err := eng.Append(id, nextTail(lastT, k)); err != nil {
				return err
			}
			grown, ok := eng.Get(id)
			if !ok {
				return fmt.Errorf("appended %q not resident", id)
			}
			_, err := reg.OnAppend(context.Background(), grown, batch)
			return err
		}); err != nil {
			return err
		}
		row := &report.Benches[len(report.Benches)-1]
		row.PruneRate = pruneRate(eng.PruneStats())
		row.CacheHitRate = eng.CacheStats().HitRate()
		reg.Close()
		if err := eng.Close(); err != nil {
			return err
		}

		// Standing evaluation under retention: the same append + watchlist
		// op with a sliding-window TrimBefore after every event, the shape
		// of a live deployment that keeps only the last few minutes
		// resident. Start times are aligned to t=0 (the synth generator
		// staggers them over an hour) so the window engages within a couple
		// of append rounds; every member keeps reporting round-robin, so
		// nothing the watch needs ever fully expires, and the cache hit
		// rate pins that sweeps no longer flush derived state: straddling
		// trajectories keep their (incrementally trimmed) preparations.
		const horizon = 600.0
		eng, err = engine.New(eval.NewSTSScorer("STS", m), engine.Options{Workers: workers})
		if err != nil {
			return err
		}
		lastT = make([]float64, nTraj)
		for i, tr := range originals {
			s := make([]model.Sample, len(tr.Samples))
			t0 := tr.Samples[0].T
			for j, sm := range tr.Samples {
				sm.T -= t0
				s[j] = sm
			}
			if _, err := eng.Add(model.Trajectory{ID: tr.ID, Samples: s}); err != nil {
				return err
			}
			lastT[i] = s[len(s)-1].T
		}
		reg, err = stream.NewRegistry(eng, stream.Options{})
		if err != nil {
			return err
		}
		retMembers := make([]string, nWatch)
		for i := range retMembers {
			retMembers[i] = originals[i].ID
		}
		if err := reg.Set(stream.Watch{Name: "bench", Members: retMembers, Theta: theta}); err != nil {
			return err
		}
		ri := 0
		var highT float64
		for _, t := range lastT {
			if t > highT {
				highT = t
			}
		}
		if err := add(fmt.Sprintf("standing_eval/synth/watch=%d/retention", nWatch), nWatch, func() error {
			k := ri % nTraj
			ri++
			id := originals[k].ID
			if _, err := eng.Append(id, nextTail(lastT, k)); err != nil {
				return err
			}
			if lastT[k] > highT {
				highT = lastT[k]
			}
			grown, ok := eng.Get(id)
			if !ok {
				return fmt.Errorf("appended %q not resident", id)
			}
			if _, err := reg.OnAppend(context.Background(), grown, batch); err != nil {
				return err
			}
			_, err := eng.TrimBefore(highT - horizon)
			return err
		}); err != nil {
			return err
		}
		row = &report.Benches[len(report.Benches)-1]
		row.PruneRate = pruneRate(eng.PruneStats())
		row.CacheHitRate = eng.CacheStats().HitRate()
		reg.Close()
		if err := eng.Close(); err != nil {
			return err
		}
	}

	// Retention sweeps and warm restarts: the derived-state lifecycle rows.
	// trim_sweep/noexpire is the standing cost every retention tick pays
	// when nothing has expired — after the per-slot min-timestamp rewrite
	// the sweep inspects slots without decoding a single trajectory, so its
	// ns/op no longer scales with corpus decode cost. recover_cold vs
	// recover_warm measure time-to-first-scored-query over the same durable
	// profiled corpus, reopened with the profile sidecar ignored vs loaded;
	// the warm row's speedup over cold is the restart headline.
	{
		const nTraj = 2000
		cfg := datagen.DefaultSynthConfig(nTraj)
		trs := make([]model.Trajectory, nTraj)
		var bounds geo.Rect
		for i := range trs {
			trs[i] = datagen.SynthTrajectory(cfg, i)
			if i == 0 {
				bounds = trs[i].Bounds()
			} else {
				bounds = bounds.Union(trs[i].Bounds())
			}
		}
		const (
			gridSize = 50.0
			sigma    = 25.0
		)
		grid, err := geo.NewGrid(bounds.Expand(4*sigma+gridSize), gridSize)
		if err != nil {
			return err
		}
		m, err := core.NewSTS(grid, sigma)
		if err != nil {
			return err
		}

		sweepEng, err := engine.New(eval.NewSTSScorer("STS", m), engine.Options{Workers: workers})
		if err != nil {
			return err
		}
		for _, tr := range trs {
			if _, err := sweepEng.Add(tr); err != nil {
				return err
			}
		}
		if err := add(fmt.Sprintf("trim_sweep/synth/n=%d/noexpire", nTraj), 0, func() error {
			st, err := sweepEng.TrimBefore(-1)
			if err != nil {
				return err
			}
			if st.Decoded != 0 {
				return fmt.Errorf("no-expiry sweep decoded %d trajectories", st.Decoded)
			}
			return nil
		}); err != nil {
			return err
		}
		if err := sweepEng.Close(); err != nil {
			return err
		}

		stOpts := store.Options{
			CoordStep:     store.StepForSigma(sigma),
			FsyncInterval: -1,
			SnapshotEvery: -1,
			// Recovery chatter would interleave with the bench table.
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		}
		root, err := os.MkdirTemp("", "stsbench-warm-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)
		dir := root + "/corpus"
		st, err := store.Open(dir, stOpts)
		if err != nil {
			return err
		}
		pOpts := profOpts
		eng, err := engine.New(eval.NewSTSScorer("STS", m), engine.Options{Workers: workers, Corpus: st, Profile: &pOpts})
		if err != nil {
			return err
		}
		for _, tr := range trs {
			if _, err := eng.Add(tr); err != nil {
				return err
			}
		}
		query := trs[0]
		// One query builds every candidate profile; the snapshot then
		// persists them into the sidecar next to the corpus snapshot.
		if _, err := eng.TopK(context.Background(), query, 5); err != nil {
			return err
		}
		if err := st.Snapshot(); err != nil {
			return err
		}
		if err := eng.Close(); err != nil {
			return err
		}

		reopen := func(cold bool) (float64, error) {
			o := stOpts
			o.DisableSidecar = cold
			st, err := store.Open(dir, o)
			if err != nil {
				return 0, err
			}
			p := profOpts
			e, err := engine.New(eval.NewSTSScorer("STS", m), engine.Options{Workers: workers, Corpus: st, Profile: &p})
			if err != nil {
				st.Close()
				return 0, err
			}
			if !cold && e.WarmLoaded() == 0 {
				e.Close()
				return 0, fmt.Errorf("warm reopen loaded no profiles")
			}
			if _, err := e.TopK(context.Background(), query, 5); err != nil {
				e.Close()
				return 0, err
			}
			rec, _ := e.Recovery()
			return rec.Duration.Seconds(), e.Close()
		}
		for _, mode := range []struct {
			name string
			cold bool
		}{{"recover_cold", true}, {"recover_warm", false}} {
			var recSec float64
			if err := add(fmt.Sprintf("%s/synth/n=%d", mode.name, nTraj), 0, func() error {
				s, err := reopen(mode.cold)
				recSec = s
				return err
			}); err != nil {
				return err
			}
			report.Benches[len(report.Benches)-1].RecoverSeconds = recSec
		}
	}

	if base != nil {
		mergeBaseline(&report, base)
		for _, b := range report.Benches {
			if b.Speedup > 0 {
				fmt.Fprintf(w, "%-42s speedup %.2fx\n", b.Name, b.Speedup)
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)

	if base != nil && opts.GatePercent > 0 {
		// A slowdown of G percent means ns/op grew to (1+G/100)× the
		// baseline, i.e. speedup below 1/(1+G/100).
		floor := 1 / (1 + opts.GatePercent/100)
		var bad []string
		for _, b := range report.Benches {
			if b.Speedup > 0 && b.Speedup < floor {
				bad = append(bad, fmt.Sprintf("%s %.0f%% slower (%.0f → %.0f ns/op)",
					b.Name, 100*(b.NsPerOp/b.BaselineNsPerOp-1), b.BaselineNsPerOp, b.NsPerOp))
			}
		}
		if len(bad) > 0 {
			return fmt.Errorf("experiments: bench regression gate (>%g%% slowdown): %s",
				opts.GatePercent, strings.Join(bad, "; "))
		}
		fmt.Fprintf(w, "gate ok: no benchmark slowed more than %g%%\n", opts.GatePercent)
	}
	return nil
}

// pruneRate derives the fraction of considered pairs disposed of without
// full refinement from an engine's cumulative filter-and-refine counters.
func pruneRate(s engine.PruneStats) float64 {
	if s.Considered == 0 {
		return 0
	}
	return float64(s.BoundPruned+s.EarlyExited) / float64(s.Considered)
}

// loadBaseline reads and parses a previously written report.
func loadBaseline(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline: %w", err)
	}
	var base PerfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("experiments: baseline %s: %w", path, err)
	}
	return &base, nil
}

// mergeBaseline copies the matching benchmark numbers of a previous report
// into report and derives per-benchmark speedups.
func mergeBaseline(report *PerfReport, base *PerfReport) {
	byName := make(map[string]PerfBench, len(base.Benches))
	for _, b := range base.Benches {
		byName[b.Name] = b
	}
	for i := range report.Benches {
		b, ok := byName[report.Benches[i].Name]
		if !ok {
			continue
		}
		report.Benches[i].BaselineNsPerOp = b.NsPerOp
		report.Benches[i].BaselinePairsPerSec = b.PairsPerSec
		report.Benches[i].BaselineAllocsPerOp = b.AllocsPerOp
		if report.Benches[i].NsPerOp > 0 {
			report.Benches[i].Speedup = b.NsPerOp / report.Benches[i].NsPerOp
		}
	}
}
