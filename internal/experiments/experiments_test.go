package experiments

import (
	"strings"
	"testing"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/model"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.N != 20 || c.Seed != 1 || c.Pairs != 100 || len(c.Rates) != 10 {
		t.Errorf("defaults: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{N: 5, Seed: 9, Pairs: 3, Rates: []float64{0.5}}.WithDefaults()
	if c2.N != 5 || c2.Seed != 9 || c2.Pairs != 3 || len(c2.Rates) != 1 {
		t.Errorf("explicit config overwritten: %+v", c2)
	}
}

func TestScenarioConstruction(t *testing.T) {
	for _, name := range []string{"mall", "taxi"} {
		sc, err := Config{N: 6}.Scenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("name %q", sc.Name)
		}
		if len(sc.Base) == 0 {
			t.Fatalf("%s: empty base dataset", name)
		}
		if len(sc.D1) != len(sc.Base) || len(sc.D2) != len(sc.Base) {
			t.Errorf("%s: split sizes %d,%d vs %d", name, len(sc.D1), len(sc.D2), len(sc.Base))
		}
		for i := range sc.Base {
			if sc.Base[i].Len() < MinTrajectoryLen {
				t.Errorf("%s: trajectory %d shorter than filter", name, i)
			}
			if sc.D1[i].ID != sc.Base[i].ID || sc.D2[i].ID != sc.Base[i].ID {
				t.Errorf("%s: pairing broken at %d", name, i)
			}
		}
		if sc.MedianGap <= 0 {
			t.Errorf("%s: median gap %v", name, sc.MedianGap)
		}
		if sc.GridSize <= 0 || sc.BaseNoise <= 0 {
			t.Errorf("%s: scales %v %v", name, sc.GridSize, sc.BaseNoise)
		}
	}
	if _, err := (Config{}).Scenario("ocean"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestScenarioSigma(t *testing.T) {
	sc := Scenario{BaseNoise: 3}
	if got := sc.Sigma(0); got != 3 {
		t.Errorf("Sigma(0)=%v", got)
	}
	if got := sc.Sigma(4); got != 5 {
		t.Errorf("Sigma(4)=%v want 5 (3-4-5)", got)
	}
}

func TestScenarioGrid(t *testing.T) {
	sc, err := Config{N: 4}.Scenario("mall")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.CellSize() != 3 {
		t.Errorf("cell size %v", g.CellSize())
	}
	// The padded grid must contain every noisy observation's support.
	if !g.Bounds().Contains(sc.Bounds.Min) || !g.Bounds().Contains(sc.Bounds.Max) {
		t.Error("grid does not cover the scenario bounds")
	}
}

func TestBuildScorersAllMethods(t *testing.T) {
	sc, err := Config{N: 4}.Scenario("mall")
	if err != nil {
		t.Fatal(err)
	}
	scorers, err := BuildScorers(sc, sc.GridSize, 0, AllMethods)
	if err != nil {
		t.Fatal(err)
	}
	if len(scorers) != len(AllMethods) {
		t.Fatalf("got %d scorers", len(scorers))
	}
	for i, s := range scorers {
		if s.Name() != AllMethods[i] {
			t.Errorf("scorer %d named %q want %q", i, s.Name(), AllMethods[i])
		}
		v, err := s.Score(sc.D1[0], sc.D2[0])
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
		_ = v
	}
	if _, err := BuildScorers(sc, sc.GridSize, 0, []string{"NOPE"}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestBuildAblationScorers(t *testing.T) {
	sc, err := Config{N: 4}.Scenario("mall")
	if err != nil {
		t.Fatal(err)
	}
	ds := append(sc.D1.Clone(), sc.D2.Clone()...)
	scorers, err := BuildAblationScorers(sc, sc.AblationNoise, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(scorers) != 4 {
		t.Fatalf("got %d variants", len(scorers))
	}
	for i, want := range AblationMethods {
		if scorers[i].Name() != want {
			t.Errorf("variant %d named %q want %q", i, scorers[i].Name(), want)
		}
	}
}

func TestTableFormatAndColumn(t *testing.T) {
	tab := Table{Title: "demo", XLabel: "x", Columns: []string{"A", "B"}}
	tab.AddRow(0.1, 1, 2)
	tab.AddRow(0.2, 3, 4)
	var sb strings.Builder
	if err := tab.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "A", "B", "0.1", "3.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	col, ok := tab.Column("B")
	if !ok || len(col) != 2 || col[0] != 2 || col[1] != 4 {
		t.Errorf("Column(B)=%v,%v", col, ok)
	}
	if _, ok := tab.Column("missing"); ok {
		t.Error("missing column found")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := Run("99", Config{N: 4}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestTinyEndToEndSweep runs a minimal sampling-rate sweep end to end on
// a small taxi scenario (the cheap one) and sanity-checks the shape of
// the output tables.
func TestTinyEndToEndSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep")
	}
	cfg := Config{N: 6, Rates: []float64{0.3, 0.8}}
	sc, err := cfg.Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	prec, rank, err := SamplingRateSweep(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prec.Rows) != 2 || len(rank.Rows) != 2 {
		t.Fatalf("rows %d,%d", len(prec.Rows), len(rank.Rows))
	}
	if len(prec.Columns) != len(AllMethods) {
		t.Fatalf("columns %v", prec.Columns)
	}
	for _, row := range prec.Rows {
		for i, v := range row.Values {
			if v < 0 || v > 1 {
				t.Errorf("precision[%s]=%v out of range", prec.Columns[i], v)
			}
		}
	}
	for _, row := range rank.Rows {
		for i, v := range row.Values {
			if v < 1 || v > float64(cfg.N) {
				t.Errorf("mean rank[%s]=%v out of range", rank.Columns[i], v)
			}
		}
	}
}

// TestNoiseSweepStructure checks the noise-figure tables have one row per
// noise level and the method columns of the paper, on a minimal scenario.
func TestNoiseSweepStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := Config{N: 6, TaxiN: 6}
	sc, err := cfg.Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	sc.NoiseLevels = []float64{0, 40}
	prec, rank, err := NoiseSweep(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prec.Rows) != 2 || len(rank.Rows) != 2 {
		t.Fatalf("rows %d,%d", len(prec.Rows), len(rank.Rows))
	}
	if prec.Rows[0].X != 0 || prec.Rows[1].X != 40 {
		t.Errorf("x values %v %v", prec.Rows[0].X, prec.Rows[1].X)
	}
}

// TestAblationStructure checks Figure 10's variant columns.
func TestAblationStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := Config{N: 6, TaxiN: 6}
	sc, err := cfg.Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	prec, rank, err := Ablation(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range AblationMethods {
		if prec.Columns[i] != want || rank.Columns[i] != want {
			t.Errorf("column %d: %q/%q want %q", i, prec.Columns[i], rank.Columns[i], want)
		}
	}
	if len(prec.Rows) != 1 {
		t.Fatalf("rows %d", len(prec.Rows))
	}
}

// TestCrossSimStructure checks Figure 11's method set and rate rows.
func TestCrossSimStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := Config{N: 6, TaxiN: 6, Pairs: 10, Rates: []float64{0.4, 0.8, 1.0}}
	sc, err := cfg.Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := CrossSim(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != len(CrossSimMethods) {
		t.Fatalf("columns %v", tab.Columns)
	}
	// Rate 1.0 is skipped (deviation 0 by construction).
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for i, v := range row.Values {
			if v < 0 {
				t.Errorf("negative deviation %v for %s", v, tab.Columns[i])
			}
		}
	}
}

// TestGridSweepStructure checks Figures 12–14 output shape.
func TestGridSweepStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := Config{N: 6, TaxiN: 6}
	sc, err := cfg.Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	sc.GridSizes = []float64{100, 250}
	timing, prec, rank, err := GridSweep(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []Table{timing, prec, rank} {
		if len(tab.Rows) != 2 {
			t.Fatalf("rows %d", len(tab.Rows))
		}
	}
	for _, row := range timing.Rows {
		if row.Values[0] <= 0 {
			t.Errorf("non-positive runtime %v", row.Values[0])
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Title: "demo", XLabel: "rate", Columns: []string{"A", "B"}}
	tab.AddRow(0.25, 1.5, 2.5)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "rate,A,B\n0.25,1.5,2.5\n"
	if sb.String() != want {
		t.Errorf("CSV = %q want %q", sb.String(), want)
	}
}

func TestOneMinusAdapter(t *testing.T) {
	base := eval.FuncScorer{N: "s", F: func(a, b model.Trajectory) (float64, error) {
		return 0.3, nil
	}}
	d := oneMinus(base)
	if d.Name() != "s" {
		t.Errorf("name %q", d.Name())
	}
	v, err := d.Score(model.Trajectory{}, model.Trajectory{})
	if err != nil || v != 0.7 {
		t.Errorf("1-s = %v, %v", v, err)
	}
}
