// Package experiments reproduces every evaluation artifact of Section VI:
// Figures 4–14, covering trajectory matching under low and heterogeneous
// sampling rates, location noise, the component ablation, cross-similarity
// deviation, and the grid-size sensitivity study. Each figure has a runner
// that emits the same series the paper plots, as a formatted table.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/stslib/sts/internal/datagen"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Scenario is one evaluation setting: a synthetic stand-in for one of the
// paper's two datasets together with the scales every measure is
// configured from.
type Scenario struct {
	// Name is "mall" or "taxi".
	Name string
	// Base holds the full trajectories (before splitting), with the
	// sensing system's intrinsic location noise already applied.
	Base model.Dataset
	// D1 and D2 are the alternating-split halves of Base (Figure 3):
	// D1[i] and D2[i] observe the same object.
	D1, D2 model.Dataset
	// Bounds is the generated area of interest.
	Bounds geo.Rect
	// GridSize is the default cell size (paper: 3 m mall, 100 m taxi).
	GridSize float64
	// BaseNoise is the sensing noise sigma baked into Base (≈3 m for the
	// WiFi mall system, ≈10 m for taxi GPS).
	BaseNoise float64
	// MedianGap is the median sampling gap of Base in seconds.
	MedianGap float64
	// MedianSpeed is the median observed speed of Base in m/s, the scale
	// that ties spatial tolerances to temporal windows.
	MedianSpeed float64
	// NoiseLevels is the β sweep of the noise experiments (Figures 8–9).
	NoiseLevels []float64
	// NoiseSweepRate is the sampling rate the noise and ablation
	// experiments run at. The paper runs them on corpora of thousands of
	// trajectories, where full-rate matching is already hard; at this
	// reproduction's reduced corpus size, full-rate trajectories are so
	// information-rich that no noise level degrades anyone. Running the
	// sweep on moderately down-sampled trajectories restores the paper's
	// difficulty regime.
	NoiseSweepRate float64
	// AblationNoise is the fixed β of the component ablation (Figure 10):
	// 6 m for the mall, 20 m for the taxi dataset.
	AblationNoise float64
	// GridSizes is the sweep of the grid-size experiments (Figures 12–14).
	GridSizes []float64
	// SpatialScale and TemporalScale are the scene-level similarity
	// scales WGM uses (trip extent, trip duration).
	SpatialScale, TemporalScale float64
}

// MinTrajectoryLen is the paper's length filter: trajectories shorter
// than 20 samples are removed before any experiment.
const MinTrajectoryLen = 20

// Mall builds the shopping-mall scenario with n pedestrians.
func Mall(n int, seed int64) Scenario {
	cfg := datagen.DefaultMallConfig(n)
	cfg.Seed = seed
	ds, _ := datagen.GenerateMall(cfg)
	sc := Scenario{
		Name:           "mall",
		Bounds:         geo.NewRect(geo.Point{}, geo.Point{X: cfg.Width, Y: cfg.Height}),
		GridSize:       3,
		BaseNoise:      3,
		NoiseLevels:    []float64{0, 2, 4, 6, 8},
		NoiseSweepRate: 0.15,
		AblationNoise:  6,
		GridSizes:      []float64{1, 2, 3, 4, 5, 6},
		SpatialScale:   30,
		TemporalScale:  600,
	}
	sc.finish(ds, seed)
	return sc
}

// Taxi builds the city taxi scenario with n taxis.
func Taxi(n int, seed int64) Scenario {
	cfg := datagen.DefaultTaxiConfig(n)
	cfg.Seed = seed
	ds, _ := datagen.GenerateTaxi(cfg)
	sc := Scenario{
		Name:           "taxi",
		Bounds:         geo.NewRect(geo.Point{}, geo.Point{X: cfg.CitySize, Y: cfg.CitySize}),
		GridSize:       100,
		BaseNoise:      10,
		NoiseLevels:    []float64{0, 20, 40, 60, 80, 100},
		NoiseSweepRate: 0.15,
		AblationNoise:  20,
		GridSizes:      []float64{50, 100, 150, 200, 250},
		SpatialScale:   1000,
		TemporalScale:  600,
	}
	sc.finish(ds, seed)
	return sc
}

// finish applies the sensing noise, the length filter and the alternating
// split, and derives the data-dependent scales.
func (sc *Scenario) finish(ds model.Dataset, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5157))
	ds = model.AddNoiseDataset(ds, sc.BaseNoise, rng)
	ds = ds.FilterMinLen(MinTrajectoryLen)
	sc.Base = ds
	sc.D1, sc.D2 = model.SplitDataset(ds)
	sc.MedianGap = medianGap(ds)
	sc.MedianSpeed = medianSpeed(ds)
}

func medianSpeed(ds model.Dataset) float64 {
	var speeds []float64
	for _, tr := range ds {
		speeds = append(speeds, tr.Speeds()...)
	}
	if len(speeds) == 0 {
		return 1
	}
	return medianOf(speeds)
}

// Grid builds a grid of the given cell size over the scenario's area of
// interest, padded so that noise-displaced locations stay well inside.
func (sc Scenario) Grid(cellSize, extraNoise float64) (*geo.Grid, error) {
	sigma := sc.Sigma(extraNoise)
	pad := 4*sigma + cellSize
	g, err := geo.NewGrid(sc.Bounds.Expand(pad), cellSize)
	if err != nil {
		return nil, fmt.Errorf("experiments: grid for %s: %w", sc.Name, err)
	}
	return g, nil
}

// Sigma combines the sensing system's intrinsic noise with an injected
// distortion of radius beta: independent Gaussians add in quadrature, and
// the experiments tell STS's noise model the true total, mirroring the
// paper's assumption that the localization error is known.
func (sc Scenario) Sigma(beta float64) float64 {
	return math.Sqrt(sc.BaseNoise*sc.BaseNoise + beta*beta)
}

func medianGap(ds model.Dataset) float64 {
	var gaps []float64
	for _, tr := range ds {
		for i := 1; i < tr.Len(); i++ {
			gaps = append(gaps, tr.Samples[i].T-tr.Samples[i-1].T)
		}
	}
	if len(gaps) == 0 {
		return 1
	}
	// Median without importing sort twice: simple selection is fine at
	// this size, but sorting is clearer.
	return medianOf(gaps)
}
