package experiments

import (
	"fmt"

	"github.com/stslib/sts/internal/baseline"
	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/markov"
	"github.com/stslib/sts/internal/model"
)

// Method names in the display order of the paper's figures.
const (
	MethodSTS  = "STS"
	MethodCATS = "CATS"
	MethodSST  = "SST"
	MethodWGM  = "WGM"
	MethodAPM  = "APM"
	MethodEDwP = "EDwP"
	MethodKF   = "KF"
)

// AllMethods is the full comparison set of Figures 4–9.
var AllMethods = []string{MethodSTS, MethodCATS, MethodSST, MethodWGM, MethodAPM, MethodEDwP, MethodKF}

// CrossSimMethods is the comparison set of Figure 11 (the paper drops
// EDwP, APM and KF there because their matching performance is poor).
var CrossSimMethods = []string{MethodSTS, MethodCATS, MethodSST, MethodWGM}

// AblationMethods is the variant set of Figure 10.
var AblationMethods = []string{"STS", "STS-N", "STS-G", "STS-F"}

// BuildScorers constructs the requested measures for a scenario, with
// every threshold and scale derived from the scenario exactly once so all
// figures use consistent settings. gridSize and beta select the current
// sweep point (grid size experiments vary the former, noise experiments
// the latter); pass sc.GridSize and 0 for the defaults.
func BuildScorers(sc Scenario, gridSize, beta float64, methods []string) ([]eval.Scorer, error) {
	grid, err := sc.Grid(gridSize, beta)
	if err != nil {
		return nil, err
	}
	sigma := sc.Sigma(beta)
	// CATS couples points across a temporal window; its spatial clue
	// tolerance must cover both the location noise and the distance the
	// object plausibly travels within one sampling gap (the offset of the
	// alternating split), or fast objects (taxis) can never produce a
	// clue. Much larger tolerances saturate the clue and destroy its
	// discrimination instead.
	catsP := baseline.CATSParams{
		Eps: 4*sigma + sc.MedianSpeed*sc.MedianGap,
		Tau: 4 * sc.MedianGap,
	}
	sstP := baseline.SSTParams{SpatialScale: 2*sigma + gridSize, TemporalScale: 2 * sc.MedianGap}
	wgmP := baseline.DefaultWGMParams(sc.SpatialScale, sc.TemporalScale)
	kfP := baseline.DefaultKalmanParams(sigma)

	out := make([]eval.Scorer, 0, len(methods))
	for _, name := range methods {
		switch name {
		case MethodSTS:
			m, err := core.NewSTS(grid, sigma)
			if err != nil {
				return nil, err
			}
			out = append(out, eval.NewSTSScorer(MethodSTS, m))
		case MethodCATS:
			p := catsP
			out = append(out, eval.FuncScorer{N: MethodCATS, F: func(a, b model.Trajectory) (float64, error) {
				return baseline.CATS(a, b, p), nil
			}})
		case MethodSST:
			p := sstP
			out = append(out, eval.FuncScorer{N: MethodSST, F: func(a, b model.Trajectory) (float64, error) {
				return baseline.SST(a, b, p), nil
			}})
		case MethodWGM:
			p := wgmP
			out = append(out, eval.FuncScorer{N: MethodWGM, F: func(a, b model.Trajectory) (float64, error) {
				return baseline.WGM(a, b, p), nil
			}})
		case MethodAPM:
			g := grid
			out = append(out, eval.FromDistance(MethodAPM, func(a, b model.Trajectory) float64 {
				return baseline.APM(a, b, g)
			}))
		case MethodEDwP:
			out = append(out, eval.FromDistance(MethodEDwP, baseline.EDwP))
		case MethodKF:
			p := kfP
			out = append(out, eval.FromDistance(MethodKF, func(a, b model.Trajectory) float64 {
				return baseline.KF(a, b, p)
			}))
		default:
			return nil, fmt.Errorf("experiments: unknown method %q", name)
		}
	}
	return out, nil
}

// BuildAblationScorers constructs the four variants of Figure 10 against
// the provided (already distorted) datasets; train holds the trajectories
// the global/frequency models learn from.
func BuildAblationScorers(sc Scenario, beta float64, train model.Dataset) ([]eval.Scorer, error) {
	grid, err := sc.Grid(sc.GridSize, beta)
	if err != nil {
		return nil, err
	}
	sigma := sc.Sigma(beta)

	full, err := core.NewSTS(grid, sigma)
	if err != nil {
		return nil, err
	}
	noNoise, err := core.NewSTSN(grid)
	if err != nil {
		return nil, err
	}
	pooled, err := kde.NewPooledSpeedModel(train)
	if err != nil {
		return nil, err
	}
	global, err := core.NewSTSG(grid, sigma, pooled)
	if err != nil {
		return nil, err
	}
	freq, err := markov.Train(grid, train, 1)
	if err != nil {
		return nil, err
	}
	freqM, err := core.NewSTSF(grid, sigma, freq, pooled.MaxSpeed())
	if err != nil {
		return nil, err
	}
	return []eval.Scorer{
		eval.NewSTSScorer("STS", full),
		eval.NewSTSScorer("STS-N", noNoise),
		eval.NewSTSScorer("STS-G", global),
		eval.NewSTSScorer("STS-F", freqM),
	}, nil
}
