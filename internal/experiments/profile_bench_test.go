package experiments

import (
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/eval"
)

// BenchmarkProfileMatrixTaxi mirrors the profile_matrix/taxi/grid=100 row of
// the stsbench perf suite (profile build + sparse-merge scoring) so the
// bucket-merge hot path can be profiled with plain `go test -bench`.
func BenchmarkProfileMatrixTaxi(b *testing.B) {
	sc := Taxi(24, 1)
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
	if err != nil {
		b.Fatal(err)
	}
	ps := eval.NewSTSScorerProfiled("STS-P", scorers[0].(*eval.STSScorer).Measure(), core.ProfileOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.ScoreMatrix(sc.D1, sc.D2, 1); err != nil {
			b.Fatal(err)
		}
	}
}
