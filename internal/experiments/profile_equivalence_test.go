package experiments

import (
	"math"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/stprob"
)

// profiledDeviations scores D1×D2 exactly and with bucketed profiles at
// each width, returning the worst element-wise |exact − profiled| per
// width.
func profiledDeviations(t *testing.T, sc Scenario, widths []float64) []float64 {
	t.Helper()
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Options{Grid: grid, Noise: stprob.GaussianNoise{Sigma: sc.Sigma(0)}})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := eval.ScoreMatrix(sc.D1, sc.D2, eval.NewSTSScorer("exact", m), 1)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]float64, len(widths))
	for k, w := range widths {
		scorer := eval.NewSTSScorerProfiled("profiled", m, core.ProfileOptions{BucketSeconds: w})
		prof, err := eval.ScoreMatrix(sc.D1, sc.D2, scorer, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			for j := range exact[i] {
				if d := math.Abs(exact[i][j] - prof[i][j]); d > devs[k] {
					devs[k] = d
				}
			}
		}
		t.Logf("%s: bucket=%gs worst |exact-profiled| = %g", sc.Name, w, devs[k])
	}
	return devs
}

// assertConverges pins the convergence property of the bucketed profile
// approximation: the deviation from the exact Eq. 10 scores never grows as
// the bucket width shrinks, and the per-width golden bounds hold. The
// bounds carry ~1.5× headroom over measured values on these fixed-seed
// fixtures; a regression that loosens the approximation trips them.
func assertConverges(t *testing.T, name string, widths, devs, bounds []float64) {
	t.Helper()
	for k := range devs {
		if devs[k] > bounds[k] {
			t.Errorf("%s: bucket=%gs deviation %g exceeds golden bound %g",
				name, widths[k], devs[k], bounds[k])
		}
		if k > 0 && devs[k] > devs[k-1]*1.02+1e-9 {
			t.Errorf("%s: deviation grew as buckets shrank: %g @ %gs vs %g @ %gs",
				name, devs[k], widths[k], devs[k-1], widths[k-1])
		}
	}
	if last, first := devs[len(devs)-1], devs[0]; last > first/4 {
		t.Errorf("%s: bound barely tightened: %g @ %gs vs %g @ %gs",
			name, last, widths[len(widths)-1], first, widths[0])
	}
}

// TestProfiledConvergenceMall: pedestrians move ~1 m/s over 3 m cells, so
// even coarse buckets stay within a cell or two of the true location and
// deviations are small in absolute terms.
func TestProfiledConvergenceMall(t *testing.T) {
	widths := []float64{240, 60, 30, 15, 3.75}
	devs := profiledDeviations(t, Mall(8, 11), widths)
	bounds := []float64{0.016, 0.0086, 0.0084, 0.0049, 0.00072}
	assertConverges(t, "mall", widths, devs, bounds)
}

// TestProfiledConvergenceTaxi: taxis cross several 100 m cells per default
// bucket, so coarse-width deviations are large — the interesting property
// is that they collapse as the width shrinks below the 15 s report period.
func TestProfiledConvergenceTaxi(t *testing.T) {
	widths := []float64{240, 60, 30, 15, 3.75}
	devs := profiledDeviations(t, Taxi(12, 13), widths)
	bounds := []float64{0.56, 0.46, 0.44, 0.29, 0.042}
	assertConverges(t, "taxi", widths, devs, bounds)
}

// compactDeviation scores D1×D2 through float64-backed and compact
// (float32-backed) profiles at each width and returns the worst
// element-wise deviation between the two storage modes.
func compactDeviation(t *testing.T, sc Scenario, widths []float64) float64 {
	t.Helper()
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Options{Grid: grid, Noise: stprob.GaussianNoise{Sigma: sc.Sigma(0)}})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, w := range widths {
		f64, err := eval.ScoreMatrix(sc.D1, sc.D2,
			eval.NewSTSScorerProfiled("profiled", m, core.ProfileOptions{BucketSeconds: w}), 1)
		if err != nil {
			t.Fatal(err)
		}
		f32, err := eval.ScoreMatrix(sc.D1, sc.D2,
			eval.NewSTSScorerProfiled("compact", m, core.ProfileOptions{BucketSeconds: w, Compact: true}), 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f64 {
			for j := range f64[i] {
				if d := math.Abs(f64[i][j] - f32[i][j]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

// TestCompactPrecisionGate is the precision gate of the float32 profile
// lane: over the convergence fixtures' width sweep, compact scores must
// stay within 1e-6 of the float64-profiled scores — the documented budget
// of rounding each stored probability to float32 (DESIGN.md §12). Scores
// here are probabilities in [0, 1], so the absolute and relative budgets
// coincide.
func TestCompactPrecisionGate(t *testing.T) {
	widths := []float64{240, 60, 30, 15, 3.75}
	for _, sc := range []Scenario{Mall(8, 11), Taxi(12, 13)} {
		worst := compactDeviation(t, sc, widths)
		t.Logf("%s: worst |profiled - compact| = %g", sc.Name, worst)
		if worst > 1e-6 {
			t.Errorf("%s: compact deviation %g exceeds the 1e-6 budget", sc.Name, worst)
		}
	}
}
