package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Figures lists the reproducible figure identifiers in paper order. Each
// identifier regenerates both panels (mall and taxi) of that figure.
var Figures = []string{"4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14"}

// Run regenerates one figure for both scenarios and writes the resulting
// tables to w. Figures that share a sweep are computed together but
// printed under their own identifier (e.g. "4" prints only the precision
// panel of the sampling-rate sweep; "5" prints the mean-rank panel).
func Run(figure string, cfg Config, w io.Writer) error {
	return RunFormat(figure, cfg, w, "text")
}

// RunFormat is Run with an output format: "text" (aligned tables) or
// "csv".
func RunFormat(figure string, cfg Config, w io.Writer, format string) error {
	cfg = cfg.WithDefaults()
	for _, name := range []string{"mall", "taxi"} {
		sc, err := cfg.Scenario(name)
		if err != nil {
			return err
		}
		tables, err := runScenarioFigure(figure, sc, cfg)
		if err != nil {
			return fmt.Errorf("experiments: figure %s on %s: %w", figure, name, err)
		}
		for _, t := range tables {
			switch format {
			case "", "text":
				err = t.Format(w)
			case "csv":
				if _, err = fmt.Fprintf(w, "# %s\n", t.Title); err == nil {
					err = t.CSV(w)
				}
			default:
				err = fmt.Errorf("unknown output format %q (want text or csv)", format)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// RunAll regenerates every figure, grouping figures that share a sweep so
// each sweep is computed once.
func RunAll(cfg Config, w io.Writer) error {
	for _, f := range []string{"4+5", "6+7", "8+9", "10", "11", "12+13+14"} {
		if err := Run(f, cfg, w); err != nil {
			return err
		}
	}
	return nil
}

// runScenarioFigure dispatches a figure identifier to its runner for one
// scenario and returns the tables to print.
func runScenarioFigure(figure string, sc Scenario, cfg Config) ([]Table, error) {
	switch figure {
	case "4", "5":
		p, r, err := SamplingRateSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		if figure == "4" {
			return []Table{p}, nil
		}
		return []Table{r}, nil
	case "4+5":
		p, r, err := SamplingRateSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		return []Table{p, r}, nil
	case "6", "7":
		p, r, err := HeterogeneousSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		if figure == "6" {
			return []Table{p}, nil
		}
		return []Table{r}, nil
	case "6+7":
		p, r, err := HeterogeneousSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		return []Table{p, r}, nil
	case "8", "9":
		p, r, err := NoiseSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		if figure == "8" {
			return []Table{p}, nil
		}
		return []Table{r}, nil
	case "8+9":
		p, r, err := NoiseSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		return []Table{p, r}, nil
	case "10":
		p, r, err := Ablation(sc, cfg)
		if err != nil {
			return nil, err
		}
		return []Table{p, r}, nil
	case "11":
		t, err := CrossSim(sc, cfg)
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	case "12", "13", "14":
		tt, tp, tr, err := GridSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		switch figure {
		case "12":
			return []Table{tt}, nil
		case "13":
			return []Table{tp}, nil
		default:
			return []Table{tr}, nil
		}
	case "12+13+14":
		tt, tp, tr, err := GridSweep(sc, cfg)
		if err != nil {
			return nil, err
		}
		return []Table{tt, tp, tr}, nil
	case "complexity":
		t, err := ComplexityCheck(sc, []int{25, 50, 100, 200}, cfg)
		if err != nil {
			return nil, err
		}
		t.Title = fmt.Sprintf("%s (log-log slope %.2f; tabulated evaluator is linear, paper model is quadratic)", t.Title, ComplexitySlope(t))
		return []Table{t}, nil
	default:
		valid := append([]string{}, Figures...)
		sort.Strings(valid)
		return nil, fmt.Errorf("unknown figure %q (valid: %v, plus the combined forms 4+5, 6+7, 8+9, 12+13+14, and the extra artifact %q)", figure, valid, "complexity")
	}
}
