package experiments

import (
	"context"
	"math"
	"testing"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/store"
)

// quantEps is the maximum score deviation a quantized columnar corpus is
// allowed relative to scoring the raw []Sample trajectories. The store's
// quantization step is sigma*1e-9 (StepForSigma), which perturbs each
// coordinate by at most half a step — far below the measure's noise scale —
// so the score budget is 1e-9.
const quantEps = 1e-9

// storeWorld builds two engines over the same scenario corpus and scorer:
// one whose corpus round-trips through a lossless columnar store, one whose
// corpus is quantized at StepForSigma(sigma). The raw oracle is the scorer
// applied directly to the in-memory trajectories, bypassing the store.
func storeWorld(t *testing.T, sc Scenario, coordStep float64) *engine.Engine {
	t.Helper()
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(scorers[0], engine.Options{
		Workers: 2,
		Corpus:  store.New(store.Options{CoordStep: coordStep}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range sc.D2 {
		if _, err := eng.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// columnarGolden pins the tentpole property of the columnar store: scores
// computed over store-resident (encode/decode round-tripped) trajectories
// match scores over the raw trajectories — exactly for the lossless
// encoding, within quantEps for the quantized one.
func columnarGolden(t *testing.T, sc Scenario) {
	scorers, err := BuildScorers(sc, sc.GridSize, 0, []string{MethodSTS})
	if err != nil {
		t.Fatal(err)
	}
	raw := scorers[0]

	sigma := sc.Sigma(0)
	lossless := storeWorld(t, sc, 0)
	quantized := storeWorld(t, sc, store.StepForSigma(sigma))

	ctx := context.Background()
	queries := sc.D1
	if len(queries) > 6 {
		queries = queries[:6]
	}
	byID := make(map[string]int, len(sc.D2))
	for i, tr := range sc.D2 {
		byID[tr.ID] = i
	}
	for _, q := range queries {
		opts := engine.TopKOptions{K: len(sc.D2), Exhaustive: true}
		lm, err := lossless.TopKOpts(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		qm, err := quantized.TopKOpts(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(lm) == 0 || len(qm) == 0 {
			t.Fatalf("%s: empty result set (lossless %d, quantized %d)", q.ID, len(lm), len(qm))
		}
		for _, m := range lm {
			want, err := raw.Score(q, sc.D2[byID[m.ID]])
			if err != nil {
				t.Fatal(err)
			}
			// Lossless order-preserving bit encoding must round-trip every
			// float64 exactly, so the scores are bit-identical.
			if want != m.Score && !(math.IsNaN(want) && math.IsNaN(m.Score)) {
				t.Fatalf("%s vs %s: lossless columnar score %.17g, raw %.17g",
					q.ID, m.ID, m.Score, want)
			}
		}
		for _, m := range qm {
			want, err := raw.Score(q, sc.D2[byID[m.ID]])
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(want - m.Score); !(d <= quantEps) {
				t.Fatalf("%s vs %s: quantized columnar score %.17g, raw %.17g (|Δ|=%g > %g)",
					q.ID, m.ID, m.Score, want, d, quantEps)
			}
		}
	}
}

func TestColumnarScoresGoldenMall(t *testing.T) {
	columnarGolden(t, Mall(8, 1))
}

func TestColumnarScoresGoldenTaxi(t *testing.T) {
	columnarGolden(t, Taxi(24, 1))
}
