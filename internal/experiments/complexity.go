package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// ComplexityCheck measures one pair's similarity time at growing
// trajectory lengths (equal |Tra| = |Tra′| = n) and relates it to the
// cost model of Section V-C, O(|Tra| · |Tra′| · |R|²).
//
// The paper's quadratic length factor comes from evaluating the KDE sum
// (O(|S|) = O(|Tra|) per transition) inside every transition evaluation.
// This implementation tabulates the KDE once per trajectory (O(1) per
// transition) and caches the observed-timestamp distributions, so the
// per-pair cost drops to O((|Tra| + |Tra′|) · s²) where s is the bounded
// support size — *linear* in trajectory length. The measured log-log
// slope should therefore sit near 1, an asymptotic improvement over the
// paper's analysis; run the measure with Exact mode and kde.Mass (the
// untabulated path) to recover the textbook scaling.
//
// The returned table has one row per length with the measured seconds;
// callers can regress the log-log slope (ComplexitySlope does).
func ComplexityCheck(sc Scenario, lengths []int, cfg Config) (Table, error) {
	cfg = cfg.WithDefaults()
	if len(sc.Base) < 1 {
		return Table{}, fmt.Errorf("experiments: scenario %s has no trajectories", sc.Name)
	}
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		return Table{}, err
	}
	m, err := core.NewSTS(grid, sc.Sigma(0))
	if err != nil {
		return Table{}, err
	}
	// Stitch a long trajectory by cycling the scenario's samples; only
	// length matters for the cost model.
	long := stitch(sc.Base, lengths[len(lengths)-1]+1)
	t := Table{
		Title:   fmt.Sprintf("Section V-C (%s): similarity time vs trajectory length", sc.Name),
		XLabel:  "samples",
		Columns: []string{"time(s)"},
	}
	for _, n := range lengths {
		a := model.Trajectory{ID: "a", Samples: long.Samples[:n]}
		b := model.Trajectory{ID: "b", Samples: offsetSamples(long.Samples[:n], 1.5)}
		start := time.Now()
		if _, err := m.Similarity(a, b); err != nil {
			return Table{}, err
		}
		t.AddRow(float64(n), time.Since(start).Seconds())
	}
	return t, nil
}

// ComplexitySlope fits the log-log slope of a ComplexityCheck table: the
// empirical exponent of runtime in trajectory length.
func ComplexitySlope(t Table) float64 {
	// Least-squares fit of log(time) on log(n).
	var sx, sy, sxx, sxy float64
	n := 0
	for _, r := range t.Rows {
		if r.Values[0] <= 0 || r.X <= 0 {
			continue
		}
		x := logOf(r.X)
		y := logOf(r.Values[0])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

func logOf(v float64) float64 { return math.Log(v) }

// stitch cycles dataset samples into one long, strictly time-increasing
// trajectory.
func stitch(ds model.Dataset, n int) model.Trajectory {
	out := model.Trajectory{ID: "stitched"}
	t := 0.0
	for len(out.Samples) < n {
		for _, tr := range ds {
			for i := 1; i < tr.Len() && len(out.Samples) < n; i++ {
				dt := tr.Samples[i].T - tr.Samples[i-1].T
				if dt <= 0 {
					dt = 1
				}
				t += dt
				out.Samples = append(out.Samples, model.Sample{Loc: tr.Samples[i].Loc, T: t})
			}
		}
	}
	return out
}

// offsetSamples shifts every sample by a small spatial offset and half a
// time step, producing a plausibly co-located partner trajectory.
func offsetSamples(in []model.Sample, d float64) []model.Sample {
	out := make([]model.Sample, len(in))
	for i, s := range in {
		out[i] = model.Sample{
			Loc: s.Loc.Add(geo.Point{X: d, Y: -d / 2}),
			T:   s.T + 0.5,
		}
	}
	return out
}
