package experiments

import (
	"testing"

	"github.com/stslib/sts/internal/eval"
)

// BenchmarkMatrixScoringMallFine mirrors the matrix_scoring/mall/grid=1.5
// row of the stsbench perf suite (the finest-grid, most cache-sensitive
// regime) so the hot path can be profiled with plain `go test -bench`.
func BenchmarkMatrixScoringMallFine(b *testing.B) {
	sc := Mall(8, 1)
	scorers, err := BuildScorers(sc, sc.GridSize*0.5, 0, []string{MethodSTS})
	if err != nil {
		b.Fatal(err)
	}
	ms := scorers[0].(*eval.STSScorer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ms.ScoreMatrix(sc.D1, sc.D2, 1); err != nil {
			b.Fatal(err)
		}
	}
}
