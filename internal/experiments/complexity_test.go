package experiments

import "testing"

func TestComplexityCheckQuadraticGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc, err := (Config{N: 6, TaxiN: 6}).Scenario("taxi")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ComplexityCheck(sc, []int{20, 40, 80, 160}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	slope := ComplexitySlope(tab)
	// The tabulated evaluator is linear in trajectory length (see the
	// ComplexityCheck doc comment); allow a generous band for constant
	// overheads and single-shot timer noise.
	if slope < 0.4 || slope > 2.2 {
		t.Errorf("log-log slope %.2f outside the expected band", slope)
	}
}

func TestComplexitySlopeExactQuadratic(t *testing.T) {
	tab := Table{}
	for _, n := range []float64{10, 20, 40, 80} {
		tab.AddRow(n, n*n)
	}
	if got := ComplexitySlope(tab); got < 1.99 || got > 2.01 {
		t.Errorf("slope of exact quadratic = %v", got)
	}
	if got := ComplexitySlope(Table{}); got != 0 {
		t.Errorf("empty slope = %v", got)
	}
}
