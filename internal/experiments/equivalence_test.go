package experiments

import (
	"math"
	"sort"
	"testing"

	"github.com/stslib/sts/internal/core"
	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/kde"
	"github.com/stslib/sts/internal/model"
	"github.com/stslib/sts/internal/stprob"
)

// equivTol is the bound on the divergence between the lattice-offset
// memoized transition path and the original per-location evaluation. The
// two compute the same sums with the same operands; only the association
// order of a handful of float multiplications differs.
const equivTol = 1e-12

// scoreBoth scores D1×D2 with the radial fast path and with the generic
// path (StripRadial) of otherwise identical measures.
func scoreBoth(t *testing.T, sc Scenario, opts core.Options) (fast, slow [][]float64) {
	t.Helper()
	fastM, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	slowOpts := opts
	prov := opts.Provider
	if prov == nil {
		prov = core.PersonalizedSpeed{}
	}
	slowOpts.Provider = core.StripRadial{Provider: prov}
	slowM, err := core.New(slowOpts)
	if err != nil {
		t.Fatal(err)
	}
	fast, err = eval.ScoreMatrix(sc.D1, sc.D2, eval.NewSTSScorer("fast", fastM), 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err = eval.ScoreMatrix(sc.D1, sc.D2, eval.NewSTSScorer("slow", slowM), 1)
	if err != nil {
		t.Fatal(err)
	}
	return fast, slow
}

// assertEquivalent checks element-wise agreement within equivTol and that
// every row ranks its columns identically.
func assertEquivalent(t *testing.T, name string, fast, slow [][]float64) {
	t.Helper()
	var worst float64
	for i := range fast {
		for j := range fast[i] {
			if d := math.Abs(fast[i][j] - slow[i][j]); d > worst {
				worst = d
			}
		}
		if rf, rs := ranking(fast[i]), ranking(slow[i]); !equalInts(rf, rs) {
			t.Errorf("%s: row %d ranking differs: fast %v slow %v", name, i, rf, rs)
		}
	}
	t.Logf("%s: worst |fast-slow| = %g", name, worst)
	if worst > equivTol {
		t.Errorf("%s: memoized path deviates from generic path by %g > %g", name, worst, equivTol)
	}
}

func ranking(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEquivalenceMallTruncated pins the memoized path against the generic
// path on the mall scenario with default truncation.
func TestEquivalenceMallTruncated(t *testing.T) {
	sc := Mall(10, 11)
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := scoreBoth(t, sc, core.Options{
		Grid:  grid,
		Noise: stprob.GaussianNoise{Sigma: sc.Sigma(0)},
	})
	assertEquivalent(t, "mall/truncated", fast, slow)
}

// TestEquivalenceTaxiTruncated is the taxi counterpart.
func TestEquivalenceTaxiTruncated(t *testing.T) {
	sc := Taxi(8, 13)
	grid, err := sc.Grid(sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := scoreBoth(t, sc, core.Options{
		Grid:  grid,
		Noise: stprob.GaussianNoise{Sigma: sc.Sigma(0)},
	})
	assertEquivalent(t, "taxi/truncated", fast, slow)
}

// TestEquivalenceMallExact pins the memoized path in Exact mode, where
// every sum ranges over all |R| cells — the literal Eq. 4 / Algorithm 1
// evaluation. A handful of trajectories on a coarse grid keeps it fast.
func TestEquivalenceMallExact(t *testing.T) {
	sc := Mall(6, 17)
	sc.D1 = sc.D1[:3]
	sc.D2 = sc.D2[:3]
	grid, err := sc.Grid(3*sc.GridSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := scoreBoth(t, sc, core.Options{
		Grid:  grid,
		Noise: stprob.GaussianNoise{Sigma: sc.Sigma(0)},
		Exact: true,
	})
	assertEquivalent(t, "mall/exact", fast, slow)
}

// massExactProvider backs transitions with the kernel estimator's exact
// sum (no table, no interpolation), in both generic and radial form, so
// the memoized path can be pinned against massExact-grade transitions.
type massExactProvider struct{ radial bool }

func (p massExactProvider) For(tr model.Trajectory) (stprob.TransitionSpec, error) {
	sm, err := kde.NewSpeedModel(tr)
	if err != nil {
		return stprob.TransitionSpec{}, err
	}
	est := sm.Estimator()
	trans := func(a geo.Point, ta float64, b geo.Point, tb float64) float64 {
		return massExactTransition(est, a.Dist(b), math.Abs(ta-tb))
	}
	spec := stprob.TransitionSpec{Trans: trans, MaxSpeed: sm.MaxSpeed()}
	if p.radial {
		spec.Radial = func(d, dt float64) float64 {
			return massExactTransition(est, d, math.Abs(dt))
		}
	}
	return spec, nil
}

func massExactTransition(est *kde.Estimator, d, dt float64) float64 {
	if dt == 0 {
		if d == 0 {
			return 1
		}
		return 0
	}
	return est.Mass(d / dt)
}

// TestEquivalenceMassExactTransitions runs both paths on transitions that
// evaluate the exact kernel sum: any divergence is purely the memoization
// machinery, with the tabulated fast path out of the picture.
func TestEquivalenceMassExactTransitions(t *testing.T) {
	if testing.Short() {
		t.Skip("exact kernel sums are slow")
	}
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"mall", Mall(6, 19)},
		{"taxi", Taxi(6, 23)},
	} {
		sc := tc.sc
		sc.D1 = sc.D1[:min(3, len(sc.D1))]
		sc.D2 = sc.D2[:min(3, len(sc.D2))]
		grid, err := sc.Grid(sc.GridSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		fast, slow := scoreBoth(t, sc, core.Options{
			Grid:     grid,
			Noise:    stprob.GaussianNoise{Sigma: sc.Sigma(0)},
			Provider: massExactProvider{radial: true},
		})
		assertEquivalent(t, tc.name+"/massExact", fast, slow)
	}
}
