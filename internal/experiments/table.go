package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is one experiment artifact: a figure panel rendered as rows of
// numbers, one column per method (or metric), one row per sweep point.
type Table struct {
	// Title identifies the artifact, e.g. "Figure 4(a): precision vs
	// data sampling rate (mall)".
	Title string
	// XLabel names the sweep variable of the first column.
	XLabel string
	// Columns are the series names in display order.
	Columns []string
	// Rows hold the sweep value and one measurement per column.
	Rows []Row
}

// Row is one sweep point.
type Row struct {
	X      float64
	Values []float64
}

// AddRow appends a sweep point.
func (t *Table) AddRow(x float64, values ...float64) {
	t.Rows = append(t.Rows, Row{X: x, Values: values})
}

// Format writes the table as aligned text.
func (t Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	width := 10
	for _, c := range t.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12.4g", r.X)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.4f", width, v)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Column returns the series for one column name, in row order.
// ok is false when the column does not exist.
func (t Table) Column(name string) (values []float64, ok bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		if idx >= len(r.Values) {
			return nil, false
		}
		out[i] = r.Values[idx]
	}
	return out, true
}

// medianOf returns the median of xs (xs is copied, not mutated).
func medianOf(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CSV writes the table as comma-separated values with a header row, for
// plotting pipelines.
func (t Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := make([]string, 0, len(r.Values)+1)
		row = append(row, strconv.FormatFloat(r.X, 'g', -1, 64))
		for _, v := range r.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
