package index

import (
	"errors"
	"math"
	"testing"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

func idxGrid(t *testing.T) *geo.Grid {
	t.Helper()
	g, err := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000}), 50)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// track builds a trajectory from (x, y, t) triples.
func track(id string, triples ...[3]float64) model.Trajectory {
	tr := model.Trajectory{ID: id}
	for _, v := range triples {
		tr.Samples = append(tr.Samples, model.Sample{Loc: geo.Point{X: v[0], Y: v[1]}, T: v[2]})
	}
	return tr
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{TimeBucket: 60}); !errors.Is(err, ErrNoGrid) {
		t.Errorf("missing grid: %v", err)
	}
	g := idxGrid(t)
	if _, err := Build(nil, Options{Grid: g}); err == nil {
		t.Error("zero time bucket accepted")
	}
	bad := model.Dataset{{ID: "bad", Samples: []model.Sample{{T: 2}, {T: 1}}}}
	if _, err := Build(bad, Options{Grid: g, TimeBucket: 60}); err == nil {
		t.Error("invalid trajectory accepted")
	}
}

func TestCandidatesFindCoLocated(t *testing.T) {
	g := idxGrid(t)
	ds := model.Dataset{
		track("near", [3]float64{100, 100, 0}, [3]float64{150, 100, 60}),
		track("far-space", [3]float64{900, 900, 0}, [3]float64{950, 900, 60}),
		track("far-time", [3]float64{100, 100, 90000}, [3]float64{150, 100, 90060}),
	}
	ix, err := Build(ds, Options{Grid: g, TimeBucket: 120})
	if err != nil {
		t.Fatal(err)
	}
	q := track("q", [3]float64{110, 110, 30})
	cand := ix.Candidates(q)
	if len(cand) != 1 || cand[0] != 0 {
		t.Errorf("candidates=%v want [0]", cand)
	}
}

func TestCandidatesSlackWidensTheNet(t *testing.T) {
	g := idxGrid(t)
	// 120 m from the query: outside one 50 m cell, inside a 150 m slack.
	ds := model.Dataset{track("nearby", [3]float64{220, 100, 0})}
	q := track("q", [3]float64{100, 100, 0})

	tight, err := Build(ds, Options{Grid: g, TimeBucket: 60, SpatialSlack: 25})
	if err != nil {
		t.Fatal(err)
	}
	if got := tight.Candidates(q); len(got) != 0 {
		t.Errorf("tight slack found %v", got)
	}
	wide, err := Build(ds, Options{Grid: g, TimeBucket: 60, SpatialSlack: 150})
	if err != nil {
		t.Fatal(err)
	}
	if got := wide.Candidates(q); len(got) != 1 {
		t.Errorf("wide slack found %v", got)
	}
}

func TestCandidatesTimeSlack(t *testing.T) {
	g := idxGrid(t)
	ds := model.Dataset{track("later", [3]float64{100, 100, 200})}
	q := track("q", [3]float64{100, 100, 0})
	short, err := Build(ds, Options{Grid: g, TimeBucket: 60, TimeSlack: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := short.Candidates(q); len(got) != 0 {
		t.Errorf("short time slack found %v", got)
	}
	long, err := Build(ds, Options{Grid: g, TimeBucket: 60, TimeSlack: 300})
	if err != nil {
		t.Fatal(err)
	}
	if got := long.Candidates(q); len(got) != 1 {
		t.Errorf("long time slack found %v", got)
	}
}

func TestNegativeTimesBucketCorrectly(t *testing.T) {
	if b := bucketOf(-1, 60); b != -1 {
		t.Errorf("bucketOf(-1)=%d", b)
	}
	if b := bucketOf(-60, 60); b != -1 {
		t.Errorf("bucketOf(-60)=%d", b)
	}
	if b := bucketOf(0, 60); b != 0 {
		t.Errorf("bucketOf(0)=%d", b)
	}
	if b := bucketOf(59.9, 60); b != 0 {
		t.Errorf("bucketOf(59.9)=%d", b)
	}
}

// overlapScorer counts co-temporal, co-located sample pairs.
var overlapScorer = eval.FuncScorer{N: "overlap", F: func(a, b model.Trajectory) (float64, error) {
	var n float64
	for _, sa := range a.Samples {
		for _, sb := range b.Samples {
			if math.Abs(sa.T-sb.T) < 60 && sa.Loc.Dist(sb.Loc) < 100 {
				n++
			}
		}
	}
	return n, nil
}}

func TestTopK(t *testing.T) {
	g := idxGrid(t)
	ds := model.Dataset{
		track("best", [3]float64{100, 100, 0}, [3]float64{120, 100, 30}),
		track("good", [3]float64{100, 100, 0}),
		track("unrelated", [3]float64{900, 900, 0}),
	}
	ix, err := Build(ds, Options{Grid: g, TimeBucket: 60})
	if err != nil {
		t.Fatal(err)
	}
	q := track("q", [3]float64{110, 100, 10}, [3]float64{130, 100, 40})
	matches, err := ix.TopK(q, overlapScorer, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("got %d matches", len(matches))
	}
	if matches[0].Index != 0 {
		t.Errorf("best match %d want 0", matches[0].Index)
	}
	if matches[0].Score < matches[1].Score {
		t.Error("matches not sorted")
	}
	// k = 0 and no candidates.
	if m, err := ix.TopK(q, overlapScorer, 0, 1); err != nil || m != nil {
		t.Errorf("k=0: %v, %v", m, err)
	}
	lost := track("lost", [3]float64{500, 20, 99999})
	if m, err := ix.TopK(lost, overlapScorer, 3, 1); err != nil || len(m) != 0 {
		t.Errorf("no candidates: %v, %v", m, err)
	}
}

func TestAccessors(t *testing.T) {
	g := idxGrid(t)
	ds := model.Dataset{track("a", [3]float64{1, 1, 0}), track("b", [3]float64{900, 900, 0})}
	ix, err := Build(ds, Options{Grid: g, TimeBucket: 60})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 || ix.Keys() != 2 || len(ix.Dataset()) != 2 {
		t.Errorf("Len=%d Keys=%d", ix.Len(), ix.Keys())
	}
}

func TestCandidatesAreSupersetOfPositiveOverlap(t *testing.T) {
	// Any trajectory with an actually overlapping sample must appear in
	// the candidate set when the slack covers the overlap distance.
	g := idxGrid(t)
	var ds model.Dataset
	for i := 0; i < 20; i++ {
		x := float64((i * 37) % 900)
		ds = append(ds, track("t", [3]float64{x, x / 2, float64(i * 10)}))
	}
	ix, err := Build(ds, Options{Grid: g, TimeBucket: 60, SpatialSlack: 120, TimeSlack: 120})
	if err != nil {
		t.Fatal(err)
	}
	q := track("q", [3]float64{111, 55, 30})
	cand := map[int]bool{}
	for _, c := range ix.Candidates(q) {
		cand[c] = true
	}
	for i, tr := range ds {
		for _, s := range tr.Samples {
			if s.Loc.Dist(q.Samples[0].Loc) <= 100 && math.Abs(s.T-q.Samples[0].T) <= 60 {
				if !cand[i] {
					t.Errorf("overlapping trajectory %d missing from candidates", i)
				}
			}
		}
	}
}
