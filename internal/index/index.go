// Package index provides a grid × time-bucket inverted index over a
// trajectory corpus, used to prune candidates before running an expensive
// similarity measure. Spatial-temporal similarity is zero (or negligible)
// for trajectory pairs that never come close in space and time, so a top-k
// query only needs to score trajectories that share at least one dilated
// spatio-temporal key with the query — typically a small fraction of a
// large corpus.
//
// The index is mutable: New builds an empty index whose postings are
// updated incrementally with Insert and Remove as the corpus changes (the
// engine package drives this under corpus mutation), while Build preserves
// the original one-shot immutable construction over a whole dataset.
// Postings are lock-striped across shards, so concurrent queries proceed
// in parallel with mutations touching other shards.
package index

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/stslib/sts/internal/engine"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Options configures an Index.
type Options struct {
	// Grid is the spatial partitioning used for the index keys
	// (required). It does not have to match the measure's grid.
	Grid *geo.Grid
	// TimeBucket is the temporal quantum in seconds (required, > 0).
	// Observations within the same bucket are considered co-temporal.
	TimeBucket float64
	// SpatialSlack dilates each query sample by this radius in meters
	// when probing the index, covering location noise and movement
	// between observations. Default: one grid cell.
	SpatialSlack float64
	// TimeSlack dilates each query sample by this many seconds. Default:
	// one time bucket.
	TimeSlack float64
}

// nShards is the lock-striping factor of the postings map. Shards are
// selected by key hash; 16 keeps contention negligible at typical
// mutation rates without bloating the empty index.
const nShards = 16

type key struct {
	cell   int32
	bucket int32
}

// shard is one lock-striped slice of the postings map.
type shard struct {
	mu       sync.RWMutex
	postings map[key][]int32
}

// Index is an inverted index from (cell, time bucket) keys to the corpus
// slots observed there. Queries and mutations are safe for concurrent
// use. It implements the engine package's Pruner interface, so an Engine
// keeps it up to date incrementally under Add/Remove/Replace.
type Index struct {
	opts   Options
	ds     model.Dataset // set by Build only; the legacy immutable view
	shards [nShards]shard
}

// ErrNoGrid is returned when Options.Grid is missing.
var ErrNoGrid = errors.New("index: Options.Grid is required")

// New returns an empty mutable index. Populate it with Insert (or hand it
// to an engine as its Pruner, which does so on corpus Add).
func New(opts Options) (*Index, error) {
	if opts.Grid == nil {
		return nil, ErrNoGrid
	}
	if opts.TimeBucket <= 0 {
		return nil, fmt.Errorf("index: TimeBucket must be positive, got %v", opts.TimeBucket)
	}
	if opts.SpatialSlack <= 0 {
		opts.SpatialSlack = opts.Grid.CellSize()
	}
	if opts.TimeSlack <= 0 {
		opts.TimeSlack = opts.TimeBucket
	}
	ix := &Index{opts: opts}
	for i := range ix.shards {
		ix.shards[i].postings = make(map[key][]int32)
	}
	return ix, nil
}

// Build indexes every sample of every trajectory in ds — the immutable
// one-shot path. The returned index also serves TopK directly against ds.
func Build(ds model.Dataset, opts Options) (*Index, error) {
	ix, err := New(opts)
	if err != nil {
		return nil, err
	}
	for ti, tr := range ds {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("index: %w", err)
		}
		ix.Insert(ti, tr)
	}
	ix.ds = ds
	return ix, nil
}

func bucketOf(t, bucket float64) int {
	b := int(t / bucket)
	if t < 0 && t != float64(b)*bucket {
		b--
	}
	return b
}

// shardOf hashes a key onto its shard.
func (ix *Index) shardOf(k key) *shard {
	h := uint32(k.cell)*0x9e3779b9 ^ uint32(k.bucket)*0x85ebca6b
	return &ix.shards[h%nShards]
}

// keys iterates tr's distinct (cell, bucket) keys.
func (ix *Index) keys(tr model.Trajectory, f func(k key)) {
	seen := make(map[key]bool, len(tr.Samples))
	for _, s := range tr.Samples {
		k := key{cell: int32(ix.opts.Grid.Cell(s.Loc)), bucket: int32(bucketOf(s.T, ix.opts.TimeBucket))}
		if seen[k] {
			continue
		}
		seen[k] = true
		f(k)
	}
}

// Insert adds postings mapping every distinct (cell, bucket) key of tr to
// the given corpus slot. It implements engine.Pruner.
func (ix *Index) Insert(slot int, tr model.Trajectory) {
	ix.keys(tr, func(k key) {
		sh := ix.shardOf(k)
		sh.mu.Lock()
		sh.postings[k] = append(sh.postings[k], int32(slot))
		sh.mu.Unlock()
	})
}

// Remove deletes the slot from the postings of every key of tr — the
// inverse of Insert with the same trajectory. It implements engine.Pruner.
func (ix *Index) Remove(slot int, tr model.Trajectory) {
	ix.keys(tr, func(k key) {
		sh := ix.shardOf(k)
		sh.mu.Lock()
		list := sh.postings[k]
		for i, ti := range list {
			if ti == int32(slot) {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(sh.postings, k)
		} else {
			sh.postings[k] = list
		}
		sh.mu.Unlock()
	})
}

// Len returns the number of trajectories of the Build dataset (0 for a
// mutable index, whose corpus lives in the engine).
func (ix *Index) Len() int { return len(ix.ds) }

// Keys returns the number of distinct (cell, bucket) keys.
func (ix *Index) Keys() int {
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		n += len(sh.postings)
		sh.mu.RUnlock()
	}
	return n
}

// Dataset returns the dataset indexed by Build (nil for a mutable index).
func (ix *Index) Dataset() model.Dataset { return ix.ds }

// Candidates returns the slots of trajectories sharing at least one
// dilated spatio-temporal key with the query, in ascending order. Each
// query sample is dilated to the axis-aligned cell box of half-width
// SpatialSlack and ±TimeSlack in time, so an object passing within that
// envelope of any query observation is a candidate. It implements
// engine.Pruner.
//
// Consecutive samples dilate to heavily overlapping boxes — an object
// advances a fraction of the slack per sampling period — so the scan
// probes only the rectangle difference against the previous sample's box
// whenever the time-bucket range carries over: cells inside the previous
// box were already probed for those buckets. This drops the postings
// probes per query from O(samples · box) to O(samples · box-perimeter ·
// velocity) without changing the returned set.
func (ix *Index) Candidates(query model.Trajectory) []int {
	found := make(map[int32]bool)
	nx := ix.opts.Grid.Cols()
	// One read-lock round per query instead of two atomics per probe:
	// mutators take a single shard lock at a time, so grabbing all shards
	// in index order cannot deadlock against them.
	for i := range ix.shards {
		ix.shards[i].mu.RLock()
	}
	defer func() {
		for i := range ix.shards {
			ix.shards[i].mu.RUnlock()
		}
	}()
	probe := func(cell, b int) {
		k := key{cell: int32(cell), bucket: int32(b)}
		for _, ti := range ix.shardOf(k).postings[k] {
			found[ti] = true
		}
	}
	var pc0, pc1, pr0, pr1, pb0, pb1 int
	first := true
	for _, s := range query.Samples {
		c0, c1, r0, r1 := ix.opts.Grid.CellRangeWithin(s.Loc, ix.opts.SpatialSlack)
		b0 := bucketOf(s.T-ix.opts.TimeSlack, ix.opts.TimeBucket)
		b1 := bucketOf(s.T+ix.opts.TimeSlack, ix.opts.TimeBucket)
		for b := b0; b <= b1; b++ {
			skipPrev := !first && b >= pb0 && b <= pb1
			for row := r0; row <= r1; row++ {
				rowInPrev := skipPrev && row >= pr0 && row <= pr1
				base := row * nx
				for col := c0; col <= c1; col++ {
					if rowInPrev && col >= pc0 && col <= pc1 {
						col = pc1 // skip the span probed at the previous sample
						continue
					}
					probe(base+col, b)
				}
			}
		}
		pc0, pc1, pr0, pr1, pb0, pb1 = c0, c1, r0, r1, b0, b1
		first = false
	}
	out := make([]int, 0, len(found))
	for ti := range found {
		out = append(out, int(ti))
	}
	sort.Ints(out)
	return out
}

// Match is one result of a top-k query.
type Match struct {
	// Index is the trajectory's position in the indexed dataset.
	Index int
	// Score is its similarity to the query.
	Score float64
}

// TopK is TopKContext without cancellation.
func (ix *Index) TopK(query model.Trajectory, scorer engine.Scorer, k, workers int) ([]Match, error) {
	return ix.TopKContext(context.Background(), query, scorer, k, workers)
}

// TopKContext scores the query against the Build dataset's candidate set
// and returns the k best matches by descending score (ties break by
// dataset position; fewer results when the candidate set is smaller).
// Trajectories outside the candidate set are never scored — they cannot
// overlap the query in space-time within the configured slack. Scoring is
// a thin view over the engine executor, so cancelling ctx aborts it
// promptly; a profiled scorer (engine.ProfileScorer with non-nil options,
// e.g. eval.NewSTSScorerProfiled) is scored through bucketed S-T profiles.
// Requires an index built with Build (a mutable engine-owned index serves
// queries through Engine.TopK instead).
func (ix *Index) TopKContext(ctx context.Context, query model.Trajectory, scorer engine.Scorer, k, workers int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	if ix.ds == nil {
		return nil, errors.New("index: TopK needs a Build index; query mutable indexes through engine.Engine.TopK")
	}
	cand := ix.Candidates(query)
	if len(cand) == 0 {
		return nil, nil
	}
	sub := make(model.Dataset, len(cand))
	for i, ti := range cand {
		sub[i] = ix.ds[ti]
	}
	scores, err := engine.ScoreMatrix(ctx, scorer, model.Dataset{query}, sub, nil, workers)
	if err != nil {
		return nil, err
	}
	matches := make([]Match, len(cand))
	for i, ti := range cand {
		matches[i] = Match{Index: ti, Score: scores[0][i]}
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].Score != matches[b].Score {
			return matches[a].Score > matches[b].Score
		}
		return matches[a].Index < matches[b].Index
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}
