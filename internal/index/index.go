// Package index provides a grid × time-bucket inverted index over a
// trajectory dataset, used to prune candidates before running an
// expensive similarity measure. Spatial-temporal similarity is zero (or
// negligible) for trajectory pairs that never come close in space and
// time, so a top-k query only needs to score trajectories that share at
// least one dilated spatio-temporal key with the query — typically a
// small fraction of a large corpus.
package index

import (
	"errors"
	"fmt"
	"sort"

	"github.com/stslib/sts/internal/eval"
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Options configures an Index.
type Options struct {
	// Grid is the spatial partitioning used for the index keys
	// (required). It does not have to match the measure's grid.
	Grid *geo.Grid
	// TimeBucket is the temporal quantum in seconds (required, > 0).
	// Observations within the same bucket are considered co-temporal.
	TimeBucket float64
	// SpatialSlack dilates each query sample by this radius in meters
	// when probing the index, covering location noise and movement
	// between observations. Default: one grid cell.
	SpatialSlack float64
	// TimeSlack dilates each query sample by this many seconds. Default:
	// one time bucket.
	TimeSlack float64
}

// Index is an immutable inverted index from (cell, time bucket) keys to
// the trajectories observed there. Build it once per corpus; queries are
// safe for concurrent use.
type Index struct {
	opts     Options
	ds       model.Dataset
	postings map[key][]int32
}

type key struct {
	cell   int32
	bucket int32
}

// ErrNoGrid is returned when Options.Grid is missing.
var ErrNoGrid = errors.New("index: Options.Grid is required")

// Build indexes every sample of every trajectory in ds.
func Build(ds model.Dataset, opts Options) (*Index, error) {
	if opts.Grid == nil {
		return nil, ErrNoGrid
	}
	if opts.TimeBucket <= 0 {
		return nil, fmt.Errorf("index: TimeBucket must be positive, got %v", opts.TimeBucket)
	}
	if opts.SpatialSlack <= 0 {
		opts.SpatialSlack = opts.Grid.CellSize()
	}
	if opts.TimeSlack <= 0 {
		opts.TimeSlack = opts.TimeBucket
	}
	ix := &Index{opts: opts, ds: ds, postings: make(map[key][]int32)}
	for ti, tr := range ds {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("index: %w", err)
		}
		seen := make(map[key]bool)
		for _, s := range tr.Samples {
			k := key{cell: int32(opts.Grid.Cell(s.Loc)), bucket: int32(bucketOf(s.T, opts.TimeBucket))}
			if seen[k] {
				continue
			}
			seen[k] = true
			ix.postings[k] = append(ix.postings[k], int32(ti))
		}
	}
	return ix, nil
}

func bucketOf(t, bucket float64) int {
	b := int(t / bucket)
	if t < 0 && t != float64(b)*bucket {
		b--
	}
	return b
}

// Len returns the number of indexed trajectories.
func (ix *Index) Len() int { return len(ix.ds) }

// Keys returns the number of distinct (cell, bucket) keys.
func (ix *Index) Keys() int { return len(ix.postings) }

// Dataset returns the indexed dataset.
func (ix *Index) Dataset() model.Dataset { return ix.ds }

// Candidates returns the indices of trajectories sharing at least one
// dilated spatio-temporal key with the query, in ascending order. The
// query's own samples are dilated by SpatialSlack and TimeSlack, so an
// object passing within that envelope of any query observation is a
// candidate.
func (ix *Index) Candidates(query model.Trajectory) []int {
	found := make(map[int32]bool)
	var cells []int
	for _, s := range query.Samples {
		cells = ix.opts.Grid.CellsWithin(cells[:0], s.Loc, ix.opts.SpatialSlack)
		b0 := bucketOf(s.T-ix.opts.TimeSlack, ix.opts.TimeBucket)
		b1 := bucketOf(s.T+ix.opts.TimeSlack, ix.opts.TimeBucket)
		for _, c := range cells {
			for b := b0; b <= b1; b++ {
				for _, ti := range ix.postings[key{cell: int32(c), bucket: int32(b)}] {
					found[ti] = true
				}
			}
		}
	}
	out := make([]int, 0, len(found))
	for ti := range found {
		out = append(out, int(ti))
	}
	sort.Ints(out)
	return out
}

// Match is one result of a top-k query.
type Match struct {
	// Index is the trajectory's position in the indexed dataset.
	Index int
	// Score is its similarity to the query.
	Score float64
}

// TopK scores the query against the index's candidate set with the given
// measure and returns the k best matches by descending score (fewer if
// the candidate set is smaller). Trajectories outside the candidate set
// are never scored — they cannot overlap the query in space-time within
// the configured slack.
func (ix *Index) TopK(query model.Trajectory, scorer eval.Scorer, k, workers int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	cand := ix.Candidates(query)
	if len(cand) == 0 {
		return nil, nil
	}
	sub := make(model.Dataset, len(cand))
	for i, ti := range cand {
		sub[i] = ix.ds[ti]
	}
	scores, err := eval.ScoreMatrix(model.Dataset{query}, sub, scorer, workers)
	if err != nil {
		return nil, err
	}
	matches := make([]Match, len(cand))
	for i, ti := range cand {
		matches[i] = Match{Index: ti, Score: scores[0][i]}
	}
	sort.Slice(matches, func(a, b int) bool { return matches[a].Score > matches[b].Score })
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}
