// Package api defines the JSON wire contract of the stsserved HTTP API:
// the request and response bodies exchanged by the server (internal/server)
// and the typed Go client (client). Trajectories travel in the same compact
// form as the dataset JSON interchange format — one object per trajectory
// with samples as [t, x, y] triples — so payloads written by
// sts.WriteDatasetJSON can be replayed against the ingestion endpoints
// directly.
//
// The package is dependency-light on purpose: it carries data, not
// behavior, and both sides of the wire (and any third-party tooling) can
// import it without pulling in the engine.
package api

import (
	"github.com/stslib/sts/internal/geo"
	"github.com/stslib/sts/internal/model"
)

// Trajectory is the wire form of one trajectory: samples are [t, x, y]
// triples (seconds, meters, meters).
type Trajectory struct {
	ID      string       `json:"id"`
	Samples [][3]float64 `json:"samples"`
}

// FromTrajectory converts a library trajectory (sts.Trajectory) to its
// wire form.
func FromTrajectory(tr model.Trajectory) Trajectory {
	out := Trajectory{ID: tr.ID, Samples: make([][3]float64, len(tr.Samples))}
	for i, s := range tr.Samples {
		out.Samples[i] = [3]float64{s.T, s.Loc.X, s.Loc.Y}
	}
	return out
}

// FromDataset converts a dataset to its wire form.
func FromDataset(ds model.Dataset) []Trajectory {
	out := make([]Trajectory, len(ds))
	for i, tr := range ds {
		out[i] = FromTrajectory(tr)
	}
	return out
}

// Model converts the wire trajectory back to a library trajectory. No
// validation or time-ordering happens here; ingestion boundaries apply
// dataset.Normalize.
func (t Trajectory) Model() model.Trajectory {
	tr := model.Trajectory{ID: t.ID, Samples: make([]model.Sample, len(t.Samples))}
	for i, s := range t.Samples {
		tr.Samples[i] = model.Sample{T: s[0], Loc: geo.Point{X: s[1], Y: s[2]}}
	}
	return tr
}

// PutResponse acknowledges PUT /v1/trajectories/{id}.
type PutResponse struct {
	ID string `json:"id"`
	// CorpusSize is the corpus size after the write.
	CorpusSize int `json:"corpus_size"`
}

// BatchRequest is the body of POST /v1/trajectories:batch.
type BatchRequest struct {
	Trajectories []Trajectory `json:"trajectories"`
}

// BatchResponse acknowledges a batch ingestion.
type BatchResponse struct {
	Ingested   int `json:"ingested"`
	CorpusSize int `json:"corpus_size"`
}

// AppendRequest is the body of POST /v1/trajectories/{id}:append —
// strictly time-ordered samples extending the resident trajectory past its
// current last timestamp.
type AppendRequest struct {
	Samples [][3]float64 `json:"samples"`
}

// AppendResponse acknowledges an append.
type AppendResponse struct {
	ID string `json:"id"`
	// N is the trajectory's sample count after the append.
	N          int `json:"n"`
	CorpusSize int `json:"corpus_size"`
	// Alerts is the number of standing-query alerts this append fired.
	Alerts int `json:"alerts"`
}

// Watch is the wire form of one standing co-location query: alert whenever
// an appended trajectory scores >= Theta against any member. On
// PUT /v1/watch/{name} the path name is authoritative; a body Name, when
// present, must agree.
type Watch struct {
	Name    string   `json:"name,omitempty"`
	Members []string `json:"members"`
	Theta   float64  `json:"theta"`
	// Webhook, when non-empty, is the URL alerts are POSTed to as JSON.
	Webhook string `json:"webhook,omitempty"`
	// DebounceSeconds overrides the server's per-pair alert debounce for
	// this watch, in stream time: once a (trajectory, member) pair fires,
	// repeat alerts are suppressed until the trajectory's clock advances
	// past the window. 0 inherits the server default (-alert-debounce);
	// negative disables debouncing for this watch.
	DebounceSeconds float64 `json:"debounce_seconds,omitempty"`
}

// WatchStats is one standing query's configuration and counters, as listed
// by GET /v1/watch.
type WatchStats struct {
	Name    string  `json:"name"`
	Members int     `json:"members"`
	Theta   float64 `json:"theta"`
	Webhook string  `json:"webhook,omitempty"`
	// Evals counts standing evaluations; Pairs the candidate pairs they
	// scored; Subthreshold the pairs disposed of below theta.
	Evals        uint64 `json:"evals"`
	Pairs        uint64 `json:"pairs"`
	Subthreshold uint64 `json:"subthreshold"`
	// Alerts counts threshold crossings that fired; Suppressed counts
	// crossings silenced by the per-pair debounce window.
	// Delivered/Retries/DeadLettered count webhook delivery outcomes;
	// Dropped counts alerts shed by the bounded delivery queue; QueueLen
	// is the current backlog.
	Alerts       uint64 `json:"alerts"`
	Suppressed   uint64 `json:"suppressed"`
	Delivered    uint64 `json:"delivered"`
	Retries      uint64 `json:"retries"`
	DeadLettered uint64 `json:"dead_lettered"`
	Dropped      uint64 `json:"dropped"`
	QueueLen     int    `json:"queue_len"`
}

// WatchListResponse is the body of GET /v1/watch.
type WatchListResponse struct {
	Watches []WatchStats `json:"watches"`
	Count   int          `json:"count"`
}

// ListResponse is the body of GET /v1/trajectories: the corpus IDs in
// sorted order.
type ListResponse struct {
	IDs   []string `json:"ids"`
	Count int      `json:"count"`
}

// SimilarityResponse is the body of GET /v1/similarity. Score is null when
// the measure is undefined on the pair (a NaN score, sanitized to a
// non-match) — JSON has no -Inf.
type SimilarityResponse struct {
	A     string   `json:"a"`
	B     string   `json:"b"`
	Score *float64 `json:"score"`
}

// Match is one result of a top-k query.
type Match struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// TopKResponse is the body of GET /v1/topk.
type TopKResponse struct {
	Query   string  `json:"query"`
	K       int     `json:"k"`
	Matches []Match `json:"matches"`
}

// LinkRequest is the body of POST /v1/link: greedily link the corpus
// subset A one-to-one to the corpus subset B (an empty list selects the
// whole corpus). MinScore rejects weak links; MaxSpeed, when positive,
// enables the FTL velocity-feasibility pre-filter with the MinGap Δt
// exemption (default 1 s).
type LinkRequest struct {
	A        []string `json:"a"`
	B        []string `json:"b"`
	MinScore float64  `json:"min_score,omitempty"`
	MaxSpeed float64  `json:"max_speed,omitempty"`
	MinGap   float64  `json:"min_gap,omitempty"`
}

// LinkedPair is one link of a LinkResponse.
type LinkedPair struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Score float64 `json:"score"`
}

// LinkResponse is the body of POST /v1/link, links sorted by descending
// score.
type LinkResponse struct {
	Links []LinkedPair `json:"links"`
}

// PruneStats mirrors the engine's cumulative filter-and-refine counters on
// the wire: how many candidate pairs pruned queries have considered, how
// many were decided by the admissible upper bound alone, how many
// refinements were abandoned early, and how many ran to completion.
type PruneStats struct {
	Considered  uint64 `json:"considered"`
	BoundPruned uint64 `json:"bound_pruned"`
	EarlyExited uint64 `json:"early_exited"`
	Refined     uint64 `json:"refined"`
}

// CacheStats mirrors the engine's per-cache counters on the wire.
type CacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Size      int     `json:"size"`
	Cap       int     `json:"cap"`
	HitRate   float64 `json:"hit_rate"`
	// Bytes is the estimated resident heap footprint of the cached values
	// (profiles report float32 vs float64 probability backing through it).
	Bytes int64 `json:"bytes"`
}

// StoreStats mirrors the columnar corpus store's footprint and persistence
// counters on the wire.
type StoreStats struct {
	// LiveBytes is the sum of live encoded-record sizes; ArenaBytes the
	// resident arena footprint including dead-record slack awaiting GC.
	LiveBytes  int64 `json:"live_bytes"`
	ArenaBytes int64 `json:"arena_bytes"`
	// CoordStep is the fixed-point coordinate quantization step applied to
	// newly encoded records (0 = lossless).
	CoordStep float64 `json:"coord_step"`
	// Persistent reports whether the store runs on a data directory (WAL +
	// snapshots). The remaining fields are zero when it does not.
	Persistent bool `json:"persistent"`
	// WALBytes is the current WAL segment's size, WALSeq its sequence
	// number.
	WALBytes int64  `json:"wal_bytes"`
	WALSeq   uint64 `json:"wal_seq"`
	// Snapshots and SnapshotErrors count snapshot attempts since open.
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// RecoverySeconds is the duration of the boot-time recovery (snapshot
	// load + WAL replay).
	RecoverySeconds float64 `json:"recovery_seconds"`
	// WarmProfiles is the number of derived-state sidecar entries
	// revalidated at recovery (profiles the engine started warm with);
	// WarmSeconds the sidecar load duration. SidecarWrites and
	// SidecarErrors count sidecar capture attempts since open.
	WarmProfiles  int     `json:"warm_profiles"`
	WarmSeconds   float64 `json:"warm_seconds"`
	SidecarWrites uint64  `json:"sidecar_writes"`
	SidecarErrors uint64  `json:"sidecar_errors"`
}

// ShardStats is one partition's statistics when the serving engine is
// sharded (stsserved -shards > 1): the same per-kind counters as the
// top-level StatsResponse, scoped to one shard. The top-level fields stay
// the rolled-up totals, so dashboards built against a single-engine server
// keep working unchanged.
type ShardStats struct {
	// Shard is the partition number (0-based), CorpusSize its share of the
	// corpus.
	Shard      int `json:"shard"`
	CorpusSize int `json:"corpus_size"`

	Prepared CacheStats  `json:"prepared_cache"`
	Profile  *CacheStats `json:"profile_cache,omitempty"`
	Prune    PruneStats  `json:"prune"`
	Store    StoreStats  `json:"store"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Version is the server build version (module version + VCS revision).
	Version string `json:"version"`
	// CorpusSize is the number of trajectories in the corpus.
	CorpusSize int `json:"corpus_size"`
	// Profiled reports whether scoring runs through bucketed S-T profiles.
	Profiled bool `json:"profiled"`
	// Workers is the engine's parallelism bound.
	Workers int `json:"workers"`
	// Prepared and Profile are the per-kind derived-state cache counters.
	Prepared CacheStats `json:"prepared_cache"`
	// Profile is only present when Profiled is true.
	Profile *CacheStats `json:"profile_cache,omitempty"`
	// Prune are the filter-and-refine counters of the pruned query paths
	// (top-k and thresholded link scoring). All-zero on engines with
	// pruning disabled.
	Prune PruneStats `json:"prune"`
	// Store are the columnar corpus store's footprint and persistence
	// counters; CorpusSize is sourced from the same store. On a sharded
	// engine these are aggregates over the per-shard stores.
	Store StoreStats `json:"store"`
	// Shards, present only when the engine is sharded, breaks the
	// rolled-up counters above down per partition, in shard order.
	Shards []ShardStats `json:"shards,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
