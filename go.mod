module github.com/stslib/sts

go 1.22
