// Serving: run the HTTP serving subsystem in-process and query it with the
// typed client.
//
// A mall-scenario corpus is batch-ingested over HTTP, then every
// trajectory queries the corpus for its top-3 most similar co-located
// trajectories under a per-query timeout. The same flow works against a
// standalone stsserved process — point client.New at its address.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"time"

	sts "github.com/stslib/sts"
	"github.com/stslib/sts/api"
	"github.com/stslib/sts/client"
)

func main() {
	// A synthetic mall corpus: 8 noisy, sporadically sampled pedestrian
	// trajectories.
	ds := sts.GenerateMall(8, 1)

	// Measure + engine, scaled to the data: 3 m grid cells matching the
	// mall scenario's ~3 m location noise.
	bounds, _ := ds.Bounds()
	grid, err := sts.NewGrid(bounds.Expand(15), 3)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := sts.NewEngine(sts.NewScorer("STS", measure), sts.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Serve the engine on a loopback port. Serve drains in-flight
	// requests when ctx is cancelled.
	srv, err := sts.NewServer(eng, sts.ServeOptions{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)), // quiet for the demo
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 5*time.Second) }()

	c, err := client.New("http://"+ln.Addr().String(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Batch-ingest the corpus over HTTP. The server validates the whole
	// batch before applying any of it.
	batch, err := c.PutBatch(context.Background(), api.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d trajectories (corpus size %d)\n\n", batch.Ingested, batch.CorpusSize)

	// Every trajectory queries the corpus for its top-3 co-location
	// matches, each query under its own 2-second budget. An expired
	// budget aborts the scoring mid-matrix server-side.
	for _, tr := range ds {
		qctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		top, err := c.TopK(qctx, tr.ID, 3)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:", top.Query)
		for _, m := range top.Matches {
			fmt.Printf("  %s=%.3g", m.ID, m.Score)
		}
		fmt.Println()
	}

	// Engine introspection over HTTP: repeated queries hit the
	// prepared-trajectory cache.
	st, err := c.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprepared cache: %d hits / %d misses (%.0f%% hit rate)\n",
		st.Prepared.Hits, st.Prepared.Misses, 100*st.Prepared.HitRate)

	// Graceful shutdown: cancel serving and wait for the drain.
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
