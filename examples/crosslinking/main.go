// Cross-system trajectory linking at corpus scale: two sensing systems
// each observe the same fleet of taxis; link every trajectory in one
// system to its counterpart in the other. This composes three parts of
// the library:
//
//   - the spatial-temporal index prunes the candidate pairs (trajectories
//     that never come close in space-time are never scored);
//   - the FTL-style velocity feasibility test vetoes physically
//     impossible links;
//   - STS scores the survivors and a greedy one-to-one assignment links
//     them.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	sts "github.com/stslib/sts"
)

func main() {
	const fleet = 40
	rng := rand.New(rand.NewSource(17))

	base := sts.GenerateTaxi(fleet, 17)
	var d1, d2 sts.Dataset
	for _, tr := range base {
		a, b := sts.AlternateSplit(tr)
		d1 = append(d1, sts.AddNoise(sts.Downsample(a, 0.6, rng), 10, rng))
		d2 = append(d2, sts.AddNoise(sts.Downsample(b, 0.4, rng), 10, rng))
	}

	bounds, _ := base.Bounds()
	grid, err := sts.NewGrid(bounds.Expand(140), 100)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 10})
	if err != nil {
		log.Fatal(err)
	}
	scorer := sts.NewScorer("STS", measure)

	// How much does the index prune? Count candidates per query.
	ix, err := sts.NewIndex(d2, sts.IndexOptions{
		Grid:         grid,
		TimeBucket:   120,
		SpatialSlack: 400,
		TimeSlack:    120,
	})
	if err != nil {
		log.Fatal(err)
	}
	totalCand := 0
	for _, q := range d1 {
		totalCand += len(ix.Candidates(q))
	}
	fmt.Printf("index pruning: %.0f%% of pairs never scored (%d of %d survive)\n",
		100*(1-float64(totalCand)/float64(fleet*fleet)), totalCand, fleet*fleet)

	start := time.Now()
	links, err := sts.LinkDatasets(d1, d2, scorer, sts.LinkOptions{
		MinScore: 1e-6,
		MaxSpeed: 40, // no taxi exceeds 144 km/h
	})
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, l := range links {
		if d1[l.I].ID == d2[l.J].ID {
			correct++
		}
	}
	fmt.Printf("linked %d/%d trajectories, %d correct (precision %.2f, recall %.2f) in %s\n",
		len(links), fleet, correct,
		float64(correct)/float64(len(links)), float64(correct)/float64(fleet),
		time.Since(start).Round(10*time.Millisecond))
	for _, l := range links[:3] {
		fmt.Printf("  strongest: %s <-> %s (STS=%.4f)\n", d1[l.I].ID, d2[l.J].ID, l.Score)
	}
}
