// Cross-system trajectory linking at corpus scale: two sensing systems
// each observe the same fleet of taxis; link every trajectory in one
// system to its counterpart in the other. This composes the engine layer
// with three parts of the library:
//
//   - the engine owns the corpus: the spatial-temporal index prunes
//     candidate pairs incrementally as trajectories are added, and
//     per-trajectory preparation is cached across queries;
//   - the FTL-style velocity feasibility test vetoes physically
//     impossible links;
//   - STS scores the survivors and a greedy one-to-one assignment links
//     them, under a cancellable deadline.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	sts "github.com/stslib/sts"
)

func main() {
	const fleet = 40
	rng := rand.New(rand.NewSource(17))

	base := sts.GenerateTaxi(fleet, 17)
	var d1, d2 sts.Dataset
	for _, tr := range base {
		a, b := sts.AlternateSplit(tr)
		d1 = append(d1, sts.AddNoise(sts.Downsample(a, 0.6, rng), 10, rng))
		d2 = append(d2, sts.AddNoise(sts.Downsample(b, 0.4, rng), 10, rng))
	}

	bounds, _ := base.Bounds()
	grid, err := sts.NewGrid(bounds.Expand(140), 100)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 10})
	if err != nil {
		log.Fatal(err)
	}
	scorer := sts.NewScorer("STS", measure)

	// One engine owns the second system's corpus: the index postings are
	// maintained incrementally by Add, and every query below reuses the
	// cached per-trajectory preparation.
	eng, err := sts.NewEngine(scorer, sts.EngineOptions{
		Index: &sts.IndexOptions{
			Grid:         grid,
			TimeBucket:   120,
			SpatialSlack: 400,
			TimeSlack:    120,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, tr := range d2 {
		// The split halves share the vehicle's ID; key the corpus by a
		// system-qualified ID as a real deployment would.
		tr.ID = fmt.Sprintf("sys2/%s", tr.ID)
		d2[i] = tr
		if _, err := eng.Add(tr); err != nil {
			log.Fatal(err)
		}
	}

	// Per-query top-1 through the engine: the index prunes, the cache
	// reuses preparation across the fleet of queries.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	top1 := 0
	for _, q := range d1 {
		matches, err := eng.TopK(ctx, q, 1)
		if err != nil {
			log.Fatal(err)
		}
		if len(matches) == 1 && matches[0].ID == "sys2/"+q.ID {
			top1++
		}
	}
	stats := eng.CacheStats()
	fmt.Printf("engine top-1: %d/%d correct; prepared cache %d hits / %d misses (%.0f%% hit rate)\n",
		top1, fleet, stats.Hits, stats.Misses, 100*stats.HitRate())

	// Full one-to-one linking with the feasibility veto, cancellable.
	start := time.Now()
	links, err := sts.LinkDatasetsContext(ctx, d1, d2, scorer, sts.LinkOptions{
		MinScore: 1e-6,
		MaxSpeed: 40, // no taxi exceeds 144 km/h
	})
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, l := range links {
		if "sys2/"+d1[l.I].ID == d2[l.J].ID {
			correct++
		}
	}
	fmt.Printf("linked %d/%d trajectories, %d correct (precision %.2f, recall %.2f) in %s\n",
		len(links), fleet, correct,
		float64(correct)/float64(len(links)), float64(correct)/float64(fleet),
		time.Since(start).Round(10*time.Millisecond))
	for _, l := range links[:3] {
		fmt.Printf("  strongest: %s <-> %s (STS=%.4f)\n", d1[l.I].ID, d2[l.J].ID, l.Score)
	}
}
