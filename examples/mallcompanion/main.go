// Group detection in a shopping mall: cluster visitors into companion
// groups by pairwise spatial-temporal similarity — the companion-detection
// application the paper motivates for viral marketing and promotion.
//
// We synthesize 8 independent shoppers plus 3 groups of 2–3 companions
// walking together, observed sporadically with 3 m noise. All pairwise STS
// scores are computed, a similarity threshold induces a graph, and its
// connected components are the detected groups.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	sts "github.com/stslib/sts"
	"github.com/stslib/sts/internal/datagen"
)

func main() {
	rng := rand.New(rand.NewSource(23))

	cfg := datagen.DefaultMallConfig(8 + 3) // 8 singletons + 3 group leaders
	cfg.Seed = 23
	ds, paths := datagen.GenerateMall(cfg)

	// Groups: leader 8 gets 1 companion, leader 9 gets 2, leader 10 gets 1.
	comp := datagen.DefaultCompanionConfig()
	groupOf := map[string]int{}
	for i := 0; i < 8; i++ {
		groupOf[ds[i].ID] = -1 // singleton
	}
	for gi, spec := range []struct {
		leader, members int
	}{{8, 1}, {9, 2}, {10, 1}} {
		groupOf[ds[spec.leader].ID] = gi
		for m := 0; m < spec.members; m++ {
			id := fmt.Sprintf("grp%d-m%d", gi, m)
			ds = append(ds, datagen.Companion(paths[spec.leader], id, comp, rng))
			groupOf[id] = gi
		}
	}
	for i := range ds {
		ds[i] = sts.AddNoise(ds[i], 3, rng)
	}

	grid, err := sts.NewGrid(sts.NewRect(sts.Point{X: -15, Y: -15}, sts.Point{X: 215, Y: 165}), 3)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})
	if err != nil {
		log.Fatal(err)
	}

	// All pairwise similarities.
	n := len(ds)
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := measure.Similarity(ds[i], ds[j])
			if err != nil {
				log.Fatal(err)
			}
			scores[i][j], scores[j][i] = v, v
		}
	}

	// Threshold at a fraction of the typical self-overlap scale, then
	// take connected components as groups.
	const threshold = 0.004
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if scores[i][j] >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]string{}
	for i := range ds {
		r := find(i)
		groups[r] = append(groups[r], ds[i].ID)
	}

	var comps [][]string
	for _, members := range groups {
		if len(members) > 1 {
			sort.Strings(members)
			comps = append(comps, members)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })

	fmt.Printf("detected %d companion groups (threshold %.3f):\n", len(comps), threshold)
	for i, members := range comps {
		fmt.Printf("  group %d: %v\n", i+1, members)
	}
	fmt.Println("ground truth: {ped-0008, grp0-m0}, {ped-0009, grp1-m0, grp1-m1}, {ped-0010, grp2-m0}")
}
