// Cross-system trajectory matching on the taxi workload: re-identify
// which trajectory in one sensing system belongs to the same vehicle as a
// trajectory in another — the user re-identification / trajectory linking
// application of Section VI-B.
//
// Each taxi's GPS trace is split alternately into two halves, simulating
// two independent sensing systems observing the same vehicles at disjoint
// times. Every D1 trajectory is matched against all of D2; we report
// precision (true twin ranked first) and mean rank, for STS and for two
// baselines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sts "github.com/stslib/sts"
)

func main() {
	const taxis = 20
	rng := rand.New(rand.NewSource(11))

	base := sts.GenerateTaxi(taxis, 11)
	// GPS noise ~10 m.
	for i := range base {
		base[i] = sts.AddNoise(base[i], 10, rng)
	}

	var d1, d2 sts.Dataset
	for _, tr := range base {
		a, b := sts.AlternateSplit(tr)
		// The second system samples more sparsely: keep 40%.
		b = sts.Downsample(b, 0.4, rng)
		d1 = append(d1, a)
		d2 = append(d2, b)
	}

	bounds, _ := base.Bounds()
	grid, err := sts.NewGrid(bounds.Expand(140), 100)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 10})
	if err != nil {
		log.Fatal(err)
	}

	scorers := []sts.Scorer{
		sts.NewScorer("STS", measure),
		distanceScorer{"EDwP", sts.EDwP},
		distanceScorer{"DTW", sts.DTW},
	}
	for _, s := range scorers {
		res, err := sts.Match(d1, d2, s, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s precision=%.2f  mean_rank=%.2f  (%d taxis, heterogeneous rates, %s)\n",
			s.Name(), res.Precision, res.MeanRank, taxis, res.Elapsed.Round(1e7))
	}
}

// distanceScorer adapts a distance function (smaller = more similar) to
// the Scorer interface.
type distanceScorer struct {
	name string
	f    func(a, b sts.Trajectory) float64
}

func (d distanceScorer) Name() string { return d.name }

func (d distanceScorer) Score(a, b sts.Trajectory) (float64, error) { return -d.f(a, b), nil }
