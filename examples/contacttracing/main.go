// Contact tracing / companion detection: find which visitors of a venue
// were co-located with an index case, from sporadic noisy observations —
// the motivating application of the paper's introduction (Figure 1).
//
// We synthesize a shopping mall: 30 independent visitors, plus 2
// companions who walk together with the index case (visitor 0), each
// observed by an asynchronous, sporadically sampling WiFi system with 3 m
// location error. STS ranks every visitor by spatial-temporal overlap with
// the index case; the two companions should top the list.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	sts "github.com/stslib/sts"
	"github.com/stslib/sts/internal/datagen"
)

func main() {
	const visitors = 30
	rng := rand.New(rand.NewSource(7))

	// Generate the venue's independent visitors and keep the continuous
	// ground-truth paths so we can derive companions of the index case.
	cfg := datagen.DefaultMallConfig(visitors)
	cfg.Seed = 7
	ds, paths := datagen.GenerateMall(cfg)

	// Two companions walk with visitor 0 (slight lag, side-by-side
	// wobble, own sampling process).
	comp := datagen.DefaultCompanionConfig()
	ds = append(ds,
		datagen.Companion(paths[0], "companion-1", comp, rng),
		datagen.Companion(paths[0], "companion-2", comp, rng),
	)

	// The sensing system adds 3 m location noise to every observation.
	for i := range ds {
		ds[i] = sts.AddNoise(ds[i], 3, rng)
	}
	index := ds[0]
	others := ds[1:]

	grid, err := sts.NewGrid(sts.NewRect(sts.Point{X: -15, Y: -15}, sts.Point{X: 215, Y: 165}), 3)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})
	if err != nil {
		log.Fatal(err)
	}

	type hit struct {
		id    string
		score float64
	}
	hits := make([]hit, 0, len(others))
	for _, tr := range others {
		s, err := measure.Similarity(index, tr)
		if err != nil {
			log.Fatal(err)
		}
		hits = append(hits, hit{tr.ID, s})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].score > hits[j].score })

	fmt.Printf("contacts of %s, by spatial-temporal overlap:\n", index.ID)
	for i, h := range hits[:5] {
		marker := ""
		if h.id == "companion-1" || h.id == "companion-2" {
			marker = "  <- true companion"
		}
		fmt.Printf("%2d. %-14s STS=%.5f%s\n", i+1, h.id, h.score, marker)
	}
}
