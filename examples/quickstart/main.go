// Quickstart: measure the spatial-temporal similarity of two trajectories
// with the public sts API.
//
// Two pedestrians walk through a small venue. The first pair of
// trajectories observes the same walk (sampled at different times, with
// location noise); the third trajectory is an unrelated walk elsewhere in
// the venue. STS should score the co-located pair far above the unrelated
// one, even though the co-located trajectories share no common timestamps
// and no identical locations.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	sts "github.com/stslib/sts"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A shared ground-truth walk: west to east along a corridor at
	// ~1.2 m/s, 300 seconds.
	walk := func(offsetY float64) []sts.Point {
		pts := make([]sts.Point, 0, 301)
		for t := 0; t <= 300; t++ {
			pts = append(pts, sts.Point{X: 1.2 * float64(t), Y: 50 + offsetY})
		}
		return pts
	}

	// observe samples a path sporadically with Gaussian location noise.
	observe := func(id string, path []sts.Point, meanGap, noise float64) sts.Trajectory {
		tr := sts.Trajectory{ID: id}
		for t := 0.0; t < float64(len(path)); t += meanGap * (0.5 + rng.Float64()) {
			p := path[int(t)]
			tr.Samples = append(tr.Samples, sts.Sample{
				Loc: sts.Point{X: p.X + noise*rng.NormFloat64(), Y: p.Y + noise*rng.NormFloat64()},
				T:   t,
			})
		}
		return tr
	}

	// Two sensing systems observe the same walk, asynchronously.
	a := observe("alice-wifi", walk(0), 12, 3)
	b := observe("alice-payments", walk(0.5), 20, 3)
	// A different person walks a parallel corridor 40 m away.
	c := observe("bob-wifi", walk(40), 12, 3)

	// Partition the venue into 3 m grid cells (matching the 3 m location
	// error, as the paper recommends) and build the measure.
	grid, err := sts.NewGrid(sts.NewRect(sts.Point{X: -20, Y: 0}, sts.Point{X: 400, Y: 120}), 3)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := sts.NewMeasure(sts.MeasureOptions{Grid: grid, NoiseSigma: 3})
	if err != nil {
		log.Fatal(err)
	}

	same, err := measure.Similarity(a, b)
	if err != nil {
		log.Fatal(err)
	}
	diff, err := measure.Similarity(a, c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("STS(%s, %s) = %.5f   <- same walk, different sensors\n", a.ID, b.ID, same)
	fmt.Printf("STS(%s, %s) = %.5f   <- different people\n", a.ID, c.ID, diff)
	if same > diff {
		fmt.Println("co-located pair correctly scores higher")
	} else {
		fmt.Println("unexpected: unrelated pair scored higher")
	}

	// For repeated queries, hand the corpus to an engine: it caches each
	// trajectory's preparation, so querying twice prepares nothing anew.
	eng, err := sts.NewEngine(sts.NewScorer("STS", measure), sts.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range []sts.Trajectory{b, c} {
		if _, err := eng.Add(tr); err != nil {
			log.Fatal(err)
		}
	}
	matches, err := eng.TopK(context.Background(), a, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine best match for %s: %s (score %.5f)\n", a.ID, matches[0].ID, matches[0].Score)
}
